//! The durable store: a [`Graph`] wrapped so that every mutation — and
//! every engine-applied repair — is journaled before the call returns.
//!
//! ## Directory layout
//!
//! ```text
//! store/
//!   wal-<base_seq:016x>.seg    append-only mutation segments
//!   snap-<seq:016x>.snap       binary snapshots (slot-exact)
//! ```
//!
//! ## Recovery
//!
//! `open` = newest loadable snapshot + replay of every record with a
//! higher sequence number. A snapshot that fails validation falls back
//! to the next older one (replaying a longer suffix); a torn tail on the
//! *active* segment is truncated silently and reported in
//! [`RecoveryStats`]; damage anywhere else refuses to open rather than
//! serve a graph with a hole in its history.
//!
//! ## Compaction
//!
//! [`DurableGraph::compact`] snapshots the current state, rotates to a
//! fresh segment, then retires every older segment and all but the
//! newest [`StoreConfig::keep_snapshots`] snapshots. Ids never change —
//! snapshots are slot-exact — so outstanding [`grepair_graph::NodeId`]s
//! stay valid across compaction.

use crate::error::{Result, StoreError};
use crate::lock;
use crate::record::Mutation;
use crate::snapshot::{list_snapshots_in, read_snapshot_in, write_snapshot_in};
use crate::vfs::{with_retry, StdFs, Vfs};
#[cfg(feature = "parallel")]
use crate::wal::SegmentContents;
use crate::wal::{list_segments_in, read_segment_in, SegmentWriter, SEGMENT_HEADER_LEN};
use grepair_core::{AppliedOp, Grr, Planner, RepairEngine, RepairReport, RepairSink};
use grepair_graph::{EdgeId, Graph, MergeOutcome, NodeId, Value};
use grepair_obs as obs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Record a `store.fault` counter tick and warn event — the single
/// funnel for "something on the durability path went wrong but was
/// handled" (skipped snapshot, truncated tail, failed fsync, tolerated
/// best-effort sync).
pub(crate) fn record_fault(detail: impl Into<String>) {
    obs::counter("store.fault").inc();
    obs::event(obs::Level::Warn, "store.fault", detail);
}

/// Tuning knobs for a [`DurableGraph`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// [`DurableGraph::maybe_compact`] compacts once the log carries at
    /// least this many bytes written after the newest snapshot.
    pub compact_log_bytes: u64,
    /// Snapshots retained after compaction (the newest ones). Keeping
    /// more than one lets recovery survive a latent bad block in the
    /// newest snapshot at the price of disk space.
    pub keep_snapshots: usize,
    /// `fsync` the active segment in [`DurableGraph::commit`] (and at
    /// the end of [`DurableGraph::repair`]). Disable only for bulk
    /// loads you are prepared to redo.
    pub sync_on_commit: bool,
    /// [`DurableGraph::maybe_compact`] records a warn-level
    /// `store.log_growth` event when it *defers* compaction while the
    /// post-snapshot log already carries at least this many bytes.
    /// Defaults to [`StoreConfig::compact_log_bytes`], under which the
    /// warning can never fire (growth past the bound compacts instead);
    /// set it lower to be told about log growth before compaction is
    /// due.
    pub log_growth_warn_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 8 * 1024 * 1024,
            compact_log_bytes: 32 * 1024 * 1024,
            keep_snapshots: 2,
            sync_on_commit: true,
            log_growth_warn_bytes: 32 * 1024 * 1024,
        }
    }
}

/// What recovery found and did while opening a store.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Sequence of the snapshot recovery started from (0 = genesis).
    pub snapshot_seq: u64,
    /// Snapshots that failed validation and were skipped.
    pub snapshots_skipped: usize,
    /// Log records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Torn-tail bytes truncated from the active segment.
    pub torn_tail_bytes: u64,
    /// Segment files read.
    pub segments_read: usize,
    /// Wall-clock time of the whole open.
    pub wall: Duration,
}

/// Point-in-time introspection of a store directory.
#[derive(Clone, Debug, Default)]
pub struct StoreStatus {
    /// Segment files on disk.
    pub segments: usize,
    /// Total segment bytes on disk.
    pub segment_bytes: u64,
    /// Snapshot files on disk.
    pub snapshots: usize,
    /// Total snapshot bytes on disk.
    pub snapshot_bytes: u64,
    /// Highest journaled sequence number.
    pub last_seq: u64,
    /// Sequence covered by the newest snapshot.
    pub snapshot_seq: u64,
    /// Record bytes journaled after the newest snapshot.
    pub log_bytes_since_snapshot: u64,
    /// Live nodes in the graph.
    pub live_nodes: usize,
    /// Live edges in the graph.
    pub live_edges: usize,
    /// Journaled sequences not yet covered by a snapshot
    /// (`last_seq - snapshot_seq`) — how much replay a recovery pays.
    pub snapshot_age_seqs: u64,
    /// Bytes in the active (append) segment.
    pub active_log_bytes: u64,
}

impl std::fmt::Display for StoreStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "|V|={} |E|={} last_seq={} snapshot_seq={}",
            self.live_nodes, self.live_edges, self.last_seq, self.snapshot_seq
        )?;
        writeln!(
            f,
            "segments: {} ({} bytes), snapshots: {} ({} bytes)",
            self.segments, self.segment_bytes, self.snapshots, self.snapshot_bytes
        )?;
        writeln!(
            f,
            "log bytes since snapshot: {}",
            self.log_bytes_since_snapshot
        )?;
        write!(
            f,
            "snapshot age: {} seqs, active log: {} bytes",
            self.snapshot_age_seqs, self.active_log_bytes
        )
    }
}

/// Outcome of a compaction.
#[derive(Clone, Debug, Default)]
pub struct CompactionStats {
    /// Sequence the new snapshot covers.
    pub snapshot_seq: u64,
    /// Segment files deleted.
    pub segments_retired: usize,
    /// Snapshot files deleted.
    pub snapshots_retired: usize,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Pre-interned handles into the global metrics registry, held for the
/// store's lifetime so the per-record write path pays atomic updates
/// only — never a registry lookup.
struct StoreTelemetry {
    append_ns: std::sync::Arc<obs::Histogram>,
    snapshot_age: std::sync::Arc<obs::Gauge>,
    active_log_bytes: std::sync::Arc<obs::Gauge>,
}

impl Default for StoreTelemetry {
    fn default() -> Self {
        StoreTelemetry {
            append_ns: obs::histogram("wal.append_ns"),
            snapshot_age: obs::gauge("store.snapshot_age_seqs"),
            active_log_bytes: obs::gauge("store.active_log_bytes"),
        }
    }
}

impl StoreTelemetry {
    fn set_gauges(&self, last_seq: u64, snapshot_seq: u64, active_log_bytes: u64) {
        self.snapshot_age.set((last_seq - snapshot_seq) as i64);
        self.active_log_bytes.set(active_log_bytes as i64);
    }
}

/// A [`Graph`] whose every mutation is journaled to a checksummed WAL,
/// with snapshot-based compaction and crash recovery.
///
/// Mutators mirror the `Graph` API but take labels and attribute keys
/// **by name** (interner numbering is process-local and therefore never
/// journaled). Reads go through [`DurableGraph::graph`].
///
/// Single-writer, enforced: create/open take a `LOCK` file in the
/// directory (pid + boot id); a second writable open fails with
/// [`StoreError::Locked`] while the holder lives, and locks left by
/// crashed processes or previous boots are detected as stale and
/// stolen. [`ReadOnlyStore`] opens take no lock.
///
/// Generic over the storage backend [`Vfs`]; production code uses the
/// default [`StdFs`] passthrough (static dispatch, zero overhead), and
/// the fault-injection tests drive the same code over a `FaultyFs`.
pub struct DurableGraph<V: Vfs = StdFs> {
    vfs: V,
    dir: PathBuf,
    config: StoreConfig,
    graph: Graph,
    writer: SegmentWriter<V>,
    telemetry: StoreTelemetry,
    /// Long-lived planning state for [`DurableGraph::repair`]: plans
    /// compiled in one repair run serve every later run against this
    /// store, and statistics come free off the graph's write path (the
    /// store keeps its graph in [`Graph::maintain_stats`] mode).
    planner: Planner,
    last_seq: u64,
    snapshot_seq: u64,
    bytes_since_snapshot: u64,
    last_recovery: RecoveryStats,
    poison: Option<Poison>,
    locked: bool,
}

/// Why a store refuses further work (see [`StoreError::Poisoned`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Poison {
    /// A journal append failed: the in-memory graph may be ahead of the
    /// log, so any further journaled record could reference state
    /// replay cannot reproduce. Mutators refuse; the on-disk log stays
    /// a valid replayable prefix, [`DurableGraph::commit`] may still
    /// sync it, and reopening recovers it.
    Append,
    /// An fsync failed: the kernel may have dropped the dirty pages
    /// while clearing the error, so a later "successful" fsync could
    /// acknowledge data that is gone (fsyncgate). Mutators *and*
    /// [`DurableGraph::commit`] refuse; reopening re-reads the file and
    /// recovers whatever truly landed.
    Fsync,
}

/// `true` if the directory holds at least one segment or snapshot.
pub(crate) fn dir_has_store_in<V: Vfs>(vfs: &V, dir: &Path) -> Result<bool> {
    Ok(!list_segments_in(vfs, dir)?.is_empty() || !list_snapshots_in(vfs, dir)?.is_empty())
}

impl DurableGraph<StdFs> {
    /// Create a fresh, empty store in `dir` (created if missing; must
    /// not already contain a store).
    pub fn create(dir: &Path, config: StoreConfig) -> Result<Self> {
        Self::create_on(StdFs, dir, config)
    }

    /// Create a store in `dir` seeded with `graph`, written as the
    /// genesis snapshot (sequence 0) — the fast path for importing an
    /// existing dataset.
    pub fn create_with(dir: &Path, config: StoreConfig, graph: Graph) -> Result<Self> {
        Self::create_with_on(StdFs, dir, config, graph)
    }

    /// Open an existing store, running full recovery (snapshot load +
    /// log replay + torn-tail truncation).
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Self> {
        Self::open_on(StdFs, dir, config)
    }

    /// [`DurableGraph::open`] under a runtime [`obs::Budget`] — see
    /// [`DurableGraph::open_on_with_budget`].
    pub fn open_with_budget(
        dir: &Path,
        config: StoreConfig,
        budget: &obs::Budget,
    ) -> Result<Self> {
        Self::open_on_with_budget(StdFs, dir, config, budget)
    }

    /// Open `dir` if it holds a store, otherwise create one.
    pub fn open_or_create(dir: &Path, config: StoreConfig) -> Result<Self> {
        Self::open_or_create_on(StdFs, dir, config)
    }

    /// Open the store read-only and degradation-tolerant — see
    /// [`ReadOnlyStore::open`].
    pub fn open_read_only(dir: &Path) -> Result<ReadOnlyStore> {
        ReadOnlyStore::open(dir)
    }
}

impl<V: Vfs> DurableGraph<V> {
    /// [`DurableGraph::create`] against an explicit backend.
    pub fn create_on(vfs: V, dir: &Path, config: StoreConfig) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        if dir_has_store_in(&vfs, dir)? {
            return Err(StoreError::AlreadyExists(dir.to_path_buf()));
        }
        lock::acquire(&vfs, dir)?;
        let writer = SegmentWriter::create_in(&vfs, dir, 1).inspect_err(|_| {
            lock::release(&vfs, dir);
        })?;
        let mut graph = Graph::new();
        graph.maintain_stats(true);
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            config,
            graph,
            writer,
            telemetry: StoreTelemetry::default(),
            planner: Planner::new(),
            last_seq: 0,
            snapshot_seq: 0,
            bytes_since_snapshot: 0,
            last_recovery: RecoveryStats::default(),
            poison: None,
            locked: true,
        })
    }

    /// [`DurableGraph::create_with`] against an explicit backend.
    pub fn create_with_on(vfs: V, dir: &Path, config: StoreConfig, mut graph: Graph) -> Result<Self> {
        let mut s = Self::create_on(vfs, dir, config)?;
        write_snapshot_in(&s.vfs, &s.dir, 0, &graph.dump_slots())?;
        graph.maintain_stats(true);
        s.graph = graph;
        Ok(s)
    }

    /// [`DurableGraph::open`] against an explicit backend.
    pub fn open_on(vfs: V, dir: &Path, config: StoreConfig) -> Result<Self> {
        Self::open_on_with_budget(vfs, dir, config, &obs::Budget::unlimited())
    }

    /// [`DurableGraph::open_on`] under a runtime [`obs::Budget`]:
    /// recovery observes the budget between segment applications and
    /// returns [`StoreError::Interrupted`] on a trip. Replay is
    /// read-only, so an interrupted open leaves the directory exactly
    /// as it was (the lock is released); reopen with a fresh budget to
    /// recover in full.
    pub fn open_on_with_budget(
        vfs: V,
        dir: &Path,
        config: StoreConfig,
        budget: &obs::Budget,
    ) -> Result<Self> {
        if !vfs.is_dir(dir) {
            return Err(StoreError::NotAStore(dir.to_path_buf()));
        }
        // Propagate real listing failures (permissions, fd exhaustion):
        // mislabelling them NotAStore invites the user to re-init over a
        // perfectly valid store.
        if !dir_has_store_in(&vfs, dir)? {
            return Err(StoreError::NotAStore(dir.to_path_buf()));
        }
        lock::acquire(&vfs, dir)?;
        match Self::recover(&vfs, dir, &config, budget) {
            Ok((graph, writer, stats, last_seq, snap_seq, bytes_since_snapshot)) => {
                let s = Self {
                    vfs,
                    dir: dir.to_path_buf(),
                    config,
                    graph,
                    writer,
                    telemetry: StoreTelemetry::default(),
                    planner: Planner::new(),
                    last_seq,
                    snapshot_seq: snap_seq,
                    bytes_since_snapshot,
                    last_recovery: stats,
                    poison: None,
                    locked: true,
                };
                s.telemetry
                    .set_gauges(s.last_seq, s.snapshot_seq, s.writer.len());
                Ok(s)
            }
            Err(e) => {
                lock::release(&vfs, dir);
                Err(e)
            }
        }
    }

    /// Recovery proper: newest loadable snapshot + ordered replay +
    /// torn-tail truncation. Split out of [`DurableGraph::open_on`] so
    /// a failure can release the lock before returning.
    #[allow(clippy::type_complexity)]
    fn recover(
        vfs: &V,
        dir: &Path,
        config: &StoreConfig,
        budget: &obs::Budget,
    ) -> Result<(Graph, SegmentWriter<V>, RecoveryStats, u64, u64, u64)> {
        let _ = config;
        let start = Instant::now();
        let _span = obs::span("store.recovery", "store");
        let recovery_started = obs::timer();
        let mut stats = RecoveryStats::default();

        // Newest loadable snapshot wins; damaged ones are skipped.
        let mut graph = Graph::new();
        let mut snap_seq = 0u64;
        let snapshots = list_snapshots_in(vfs, dir)?;
        for (seq, path) in snapshots.iter().rev() {
            match read_snapshot_in(vfs, path).and_then(|(s, dump)| {
                Graph::restore_slots(&dump)
                    .map(|g| (s, g))
                    .map_err(|e| StoreError::Corrupt {
                        path: path.clone(),
                        detail: e.to_string(),
                    })
            }) {
                Ok((s, g)) => {
                    debug_assert_eq!(s, *seq);
                    graph = g;
                    snap_seq = s;
                    break;
                }
                Err(e) => {
                    stats.snapshots_skipped += 1;
                    record_fault(format!("skipping damaged snapshot: {e}"));
                }
            }
        }
        stats.snapshot_seq = snap_seq;

        // Replay every record newer than the snapshot, in order.
        let segments = list_segments_in(vfs, dir)?;

        // Decode-ahead: segments are self-delimiting (each frame carries
        // its own length and checksum), so workers can decode all
        // candidate segments concurrently. The replay loop below then
        // consumes the pre-decoded results strictly in segment order,
        // with the exact same skip / torn-tail / sequence-gap semantics
        // as a serial read: a segment the loop decides to skip never has
        // its decode result inspected, so a damaged fully-covered
        // segment stays as harmless as it is serially.
        // Under a budget the decode fan-out stops early: morsel claims
        // are index-ordered, so a trip leaves a contiguous decoded
        // prefix and the consume loop below hits its own checkpoint
        // before ever needing a missing entry.
        #[cfg(feature = "parallel")]
        let mut decoded: Vec<Option<Result<SegmentContents>>> = {
            let stop = || budget.is_tripped();
            let mut v = rayon::par_pass_until(
                segments.iter().collect::<Vec<_>>(),
                &stop,
                |(base, path)| Some(read_segment_in(vfs, path, Some(*base))),
            );
            v.resize_with(segments.len(), || None);
            v
        };

        let mut bytes_since_snapshot = 0u64;
        let mut next_seq = snap_seq + 1;
        let mut active: Option<(PathBuf, u64, u64)> = None; // path, base, valid_len
        for (i, (base, path)) in segments.iter().enumerate() {
            // Budget boundary: between segment applications only. A
            // segment replays atomically once started, and nothing here
            // writes, so an interrupted open is side-effect free.
            if let Some(reason) = budget.checkpoint() {
                return Err(StoreError::Interrupted(reason));
            }
            let is_last = i + 1 == segments.len();
            // A segment is entirely covered by the snapshot if the next
            // segment starts at or below the first needed sequence.
            if !is_last {
                let next_base = segments[i + 1].0;
                if next_base <= next_seq {
                    continue;
                }
            }
            #[cfg(feature = "parallel")]
            let contents = decoded[i].take().expect("each segment decoded once")?;
            #[cfg(not(feature = "parallel"))]
            let contents = read_segment_in(vfs, path, Some(*base))?;
            stats.segments_read += 1;
            if contents.is_torn() {
                if !is_last {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        detail: format!(
                            "{} torn bytes in a non-active segment",
                            contents.torn_bytes
                        ),
                    });
                }
                stats.torn_tail_bytes = contents.torn_bytes;
                record_fault(format!(
                    "truncating {} torn tail bytes from {}",
                    contents.torn_bytes,
                    path.display()
                ));
            }
            for rec in &contents.records {
                if rec.seq < next_seq {
                    continue; // covered by the snapshot
                }
                if rec.seq != next_seq {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        detail: format!(
                            "sequence gap: expected {next_seq}, found {}",
                            rec.seq
                        ),
                    });
                }
                rec.mutation.apply(&mut graph).map_err(|e| match e {
                    StoreError::ReplayDivergence { detail, .. } => {
                        StoreError::ReplayDivergence {
                            seq: rec.seq,
                            detail,
                        }
                    }
                    StoreError::Graph(g) => StoreError::ReplayDivergence {
                        seq: rec.seq,
                        detail: format!("graph rejected journaled op: {g}"),
                    },
                    other => other,
                })?;
                stats.records_replayed += 1;
                bytes_since_snapshot += rec.frame_len;
                next_seq += 1;
            }
            if is_last {
                active = Some((path.clone(), *base, contents.valid_len));
            }
        }
        let last_seq = next_seq - 1;

        // Reopen (or recreate) the active segment for appending,
        // dropping any torn tail so new records follow valid ones.
        let writer = match active {
            Some((path, base, valid_len)) if valid_len >= SEGMENT_HEADER_LEN => {
                SegmentWriter::open_end_in(vfs, &path, base, valid_len)?
            }
            Some((path, base, _)) => {
                // Header itself was torn — rewrite the segment fresh.
                with_retry("wal.remove", || vfs.remove_file(&path))?;
                SegmentWriter::create_in(vfs, dir, base)?
            }
            None => SegmentWriter::create_in(vfs, dir, last_seq + 1)?,
        };

        stats.wall = start.elapsed();
        obs::record_since_named("store.recovery_ns", recovery_started);
        obs::counter("wal.records_replayed").add(stats.records_replayed);
        // Statistics maintenance starts *after* replay (one compute over
        // the recovered state) so the replay loop itself stays lean.
        graph.maintain_stats(true);
        Ok((graph, writer, stats, last_seq, snap_seq, bytes_since_snapshot))
    }

    /// [`DurableGraph::open_or_create`] against an explicit backend.
    pub fn open_or_create_on(vfs: V, dir: &Path, config: StoreConfig) -> Result<Self> {
        if vfs.is_dir(dir) && dir_has_store_in(&vfs, dir)? {
            Self::open_on(vfs, dir, config)
        } else {
            Self::create_on(vfs, dir, config)
        }
    }

    /// The wrapped graph (all reads go through here).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume the store and keep just the graph (read-only workflows
    /// that open, inspect and exit). Releases the `LOCK` file.
    pub fn into_graph(mut self) -> Graph {
        std::mem::replace(&mut self.graph, Graph::new())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's long-lived repair planner (plan-cache and statistics
    /// introspection; warmed by [`DurableGraph::repair`]).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Highest journaled sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// What the most recent [`DurableGraph::open`] found and did.
    pub fn last_recovery(&self) -> &RecoveryStats {
        &self.last_recovery
    }

    /// Scan the directory and report current store shape.
    pub fn status(&self) -> Result<StoreStatus> {
        let mut st = StoreStatus {
            last_seq: self.last_seq,
            snapshot_seq: self.snapshot_seq,
            log_bytes_since_snapshot: self.bytes_since_snapshot,
            live_nodes: self.graph.num_nodes(),
            live_edges: self.graph.num_edges(),
            snapshot_age_seqs: self.last_seq - self.snapshot_seq,
            active_log_bytes: self.writer.len(),
            ..StoreStatus::default()
        };
        for (_, path) in list_segments_in(&self.vfs, &self.dir)? {
            st.segments += 1;
            st.segment_bytes += self.vfs.file_len(&path)?;
        }
        for (_, path) in list_snapshots_in(&self.vfs, &self.dir)? {
            st.snapshots += 1;
            st.snapshot_bytes += self.vfs.file_len(&path)?;
        }
        Ok(st)
    }

    // ---- journaling core ---------------------------------------------------

    /// Whether a journal failure has poisoned this instance (see
    /// [`StoreError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    fn ensure_writable(&self) -> Result<()> {
        if self.poison.is_some() {
            return Err(StoreError::Poisoned);
        }
        Ok(())
    }

    fn append(&mut self, m: &Mutation) -> Result<()> {
        let seq = self.last_seq + 1;
        let append_started = obs::timer();
        match append_with_rotation(
            &self.vfs,
            &mut self.writer,
            &self.dir,
            self.config.segment_max_bytes,
            seq,
            m,
        ) {
            Ok(written) => {
                obs::record_since(&self.telemetry.append_ns, append_started);
                self.last_seq = seq;
                self.bytes_since_snapshot += written;
                self.telemetry
                    .set_gauges(self.last_seq, self.snapshot_seq, self.writer.len());
                Ok(())
            }
            Err(e) => {
                // The graph mutation this record describes has already
                // been applied in memory; without the record the log can
                // no longer reproduce the in-memory state.
                self.poison = Some(Poison::Append);
                record_fault(format!("journal append failed; store poisoned: {e}"));
                Err(e)
            }
        }
    }

    /// `fsync` the active segment — everything journaled so far is
    /// durable once this returns.
    ///
    /// An fsync failure is final: the store poisons itself against any
    /// further commit or mutation (see [`Poison::Fsync`] — retrying an
    /// fsync after a failure can silently lose the very pages the first
    /// call failed on). An [append](Poison::Append)-poisoned store may
    /// still commit: syncing the valid journaled prefix is safe.
    pub fn commit(&mut self) -> Result<()> {
        if self.poison == Some(Poison::Fsync) {
            return Err(StoreError::Poisoned);
        }
        let commit_started = obs::timer();
        if self.config.sync_on_commit {
            let fsync_started = obs::timer();
            if let Err(e) = self.writer.sync() {
                self.poison = Some(Poison::Fsync);
                record_fault(format!("commit fsync failed; store poisoned: {e}"));
                return Err(e);
            }
            obs::record_since_named("wal.fsync_ns", fsync_started);
        }
        obs::record_since_named("store.commit_ns", commit_started);
        Ok(())
    }

    /// Journal an engine-applied repair operation. The operation must
    /// already have been applied to [`DurableGraph::graph`] (that is
    /// what [`RepairEngine::repair_with_sink`]'s sink guarantees).
    pub fn journal_applied(&mut self, op: &AppliedOp) -> Result<()> {
        self.ensure_writable()?;
        self.append(&Mutation::from_applied(op))
    }

    // ---- mutators ----------------------------------------------------------

    /// Insert a node; journals and returns the allocated id.
    pub fn add_node(&mut self, label: &str) -> Result<NodeId> {
        self.add_node_with_attrs(label, &[])
    }

    /// Insert a node with attributes (applied in the given order).
    pub fn add_node_with_attrs(
        &mut self,
        label: &str,
        attrs: &[(String, Value)],
    ) -> Result<NodeId> {
        self.ensure_writable()?;
        let l = self.graph.label(label);
        let node = self.graph.add_node(l);
        for (k, v) in attrs {
            let kk = self.graph.attr_key(k);
            self.graph.set_attr(node, kk, v.clone())?;
        }
        self.append(&Mutation::AddNode {
            node,
            label: label.to_owned(),
            attrs: attrs.to_vec(),
        })?;
        Ok(node)
    }

    /// Delete a node and its incident edges.
    pub fn remove_node(&mut self, node: NodeId) -> Result<Vec<EdgeId>> {
        self.ensure_writable()?;
        let removed = self.graph.remove_node(node)?;
        self.append(&Mutation::RemoveNode { node })?;
        Ok(removed)
    }

    /// Insert an edge; journals and returns the allocated id.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: &str) -> Result<EdgeId> {
        self.ensure_writable()?;
        let l = self.graph.label(label);
        let edge = self.graph.add_edge(src, dst, l)?;
        self.append(&Mutation::AddEdge {
            edge,
            src,
            dst,
            label: label.to_owned(),
        })?;
        Ok(edge)
    }

    /// Delete an edge.
    pub fn remove_edge(&mut self, edge: EdgeId) -> Result<()> {
        self.ensure_writable()?;
        self.graph.remove_edge(edge)?;
        self.append(&Mutation::RemoveEdge { edge })?;
        Ok(())
    }

    /// Replace a node's label; returns the previous label's name.
    pub fn set_node_label(&mut self, node: NodeId, label: &str) -> Result<String> {
        self.ensure_writable()?;
        let l = self.graph.label(label);
        let old = self.graph.set_node_label(node, l)?;
        let old = self.graph.label_name(old).to_owned();
        self.append(&Mutation::SetNodeLabel {
            node,
            label: label.to_owned(),
        })?;
        Ok(old)
    }

    /// Replace an edge's label; returns the previous label's name.
    pub fn set_edge_label(&mut self, edge: EdgeId, label: &str) -> Result<String> {
        self.ensure_writable()?;
        let l = self.graph.label(label);
        let old = self.graph.set_edge_label(edge, l)?;
        let old = self.graph.label_name(old).to_owned();
        self.append(&Mutation::SetEdgeLabel {
            edge,
            label: label.to_owned(),
        })?;
        Ok(old)
    }

    /// Set an attribute; returns the previous value, if any.
    pub fn set_attr(&mut self, node: NodeId, key: &str, value: Value) -> Result<Option<Value>> {
        self.ensure_writable()?;
        let k = self.graph.attr_key(key);
        let old = self.graph.set_attr(node, k, value.clone())?;
        self.append(&Mutation::SetAttr {
            node,
            key: key.to_owned(),
            value,
        })?;
        Ok(old)
    }

    /// Remove an attribute; returns the removed value, if any.
    pub fn remove_attr(&mut self, node: NodeId, key: &str) -> Result<Option<Value>> {
        self.ensure_writable()?;
        let k = self.graph.attr_key(key);
        let old = self.graph.remove_attr(node, k)?;
        self.append(&Mutation::RemoveAttr {
            node,
            key: key.to_owned(),
        })?;
        Ok(old)
    }

    /// Merge `merged` into `keep` (see [`Graph::merge_nodes`]).
    pub fn merge_nodes(
        &mut self,
        keep: NodeId,
        merged: NodeId,
        dedup_parallel: bool,
    ) -> Result<MergeOutcome> {
        self.ensure_writable()?;
        let outcome = self.graph.merge_nodes(keep, merged, dedup_parallel)?;
        self.append(&Mutation::MergeNodes {
            keep,
            merged,
            dedup_parallel,
        })?;
        Ok(outcome)
    }

    // ---- repairs -----------------------------------------------------------

    /// Run a repair to fixpoint with applied operations journaled
    /// round-atomically, then commit (fsync). Ops buffer in memory and
    /// hit the log only at the engine's `round_committed` boundary, so
    /// the journal only ever holds whole rounds: a crash — or a
    /// [budget](RepairEngine::with_budget) trip, which makes the engine
    /// abandon the in-flight round before applying anything — recovers
    /// to exactly a committed-round prefix, a consistent graph, never a
    /// torn one. Cancellation is never observed between an append and
    /// the final fsync: the budget is the engine's concern, and the
    /// flush path here runs straight through.
    ///
    /// Planning is always warm: the store owns a long-lived
    /// [`Planner`], so plans compiled during one repair serve every
    /// later repair of this store, and the statistics feeding the cost
    /// model come free off the graph's write path (the store keeps its
    /// graph in [`Graph::maintain_stats`] mode). The second and later
    /// calls report `plan_cache_hits` with zero `pattern_compiles`.
    ///
    /// If an append fails mid-run the engine may still apply further
    /// repairs in memory before the run winds down; the store is then
    /// [poisoned](StoreError::Poisoned) — it refuses all further
    /// mutations so the drifted in-memory state can never contaminate
    /// the journal. Reopen the directory to recover the last durable
    /// state.
    pub fn repair(&mut self, engine: &RepairEngine, rules: &[Grr]) -> Result<RepairReport> {
        self.ensure_writable()?;
        let DurableGraph {
            vfs,
            graph,
            writer,
            dir,
            config,
            planner,
            last_seq,
            bytes_since_snapshot,
            telemetry,
            ..
        } = self;
        let mut io_err: Option<StoreError> = None;
        let sink = WalRoundSink {
            vfs,
            writer,
            dir,
            segment_max_bytes: config.segment_max_bytes,
            last_seq,
            bytes_since_snapshot,
            telemetry,
            pending: Vec::new(),
            io_err: &mut io_err,
        };
        let report = engine.repair_with_planner_and_sink(graph, rules, planner, sink);
        if let Some(e) = io_err {
            self.poison = Some(Poison::Append);
            record_fault(format!("repair journaling failed; store poisoned: {e}"));
            return Err(e);
        }
        self.commit()?;
        self.telemetry
            .set_gauges(self.last_seq, self.snapshot_seq, self.writer.len());
        Ok(report)
    }

    // ---- compaction --------------------------------------------------------

    /// Snapshot the current state, rotate the log, and retire segments
    /// and snapshots that recovery no longer needs.
    pub fn compact(&mut self) -> Result<CompactionStats> {
        let _span = obs::span("store.compaction", "store");
        let compaction_started = obs::timer();
        // A poisoned store must not snapshot: the in-memory graph may
        // hold unjournaled mutations, and persisting them would launder
        // the drift into a recovery point.
        self.ensure_writable()?;
        // Everything the snapshot will cover must be durable first: if
        // the snapshot landed but its covered records did not, a crash
        // would recover *ahead* of the log. A failed fsync here poisons
        // like one in commit (same fsyncgate hazard).
        if let Err(e) = self.writer.sync() {
            self.poison = Some(Poison::Fsync);
            record_fault(format!("pre-snapshot fsync failed; store poisoned: {e}"));
            return Err(e);
        }
        write_snapshot_in(&self.vfs, &self.dir, self.last_seq, &self.graph.dump_slots())?;
        let mut stats = CompactionStats {
            snapshot_seq: self.last_seq,
            ..CompactionStats::default()
        };

        // Rotate so the active segment holds only post-snapshot records —
        // unless it is already a fresh, empty segment at the right base
        // (fresh store, or back-to-back compactions).
        if !(self.writer.is_empty() && self.writer.base_seq() == self.last_seq + 1) {
            self.writer = SegmentWriter::create_in(&self.vfs, &self.dir, self.last_seq + 1)?;
        }

        // Retire snapshots beyond the retention window first; the oldest
        // *kept* snapshot then bounds which segments are still needed —
        // recovery must be able to fall back to it and replay forward,
        // so segments covering (oldest_kept, now] stay.
        let snapshots = list_snapshots_in(&self.vfs, &self.dir)?;
        let keep = self.config.keep_snapshots.max(1);
        let cutoff = snapshots.len().saturating_sub(keep);
        for (_, path) in &snapshots[..cutoff] {
            stats.bytes_reclaimed += self.vfs.file_len(path)?;
            with_retry("snapshot.retire", || self.vfs.remove_file(path))?;
            stats.snapshots_retired += 1;
        }
        let oldest_kept = snapshots[cutoff].0;

        // A segment covers [base, next_base); it is retirable once the
        // oldest kept snapshot covers all of it. The active segment has
        // no successor and is never retired.
        let segments = list_segments_in(&self.vfs, &self.dir)?;
        for (i, (_, path)) in segments.iter().enumerate() {
            match segments.get(i + 1) {
                Some((next_base, _)) if *next_base <= oldest_kept + 1 => {
                    stats.bytes_reclaimed += self.vfs.file_len(path)?;
                    with_retry("wal.retire", || self.vfs.remove_file(path))?;
                    stats.segments_retired += 1;
                }
                _ => break,
            }
        }
        // Make the removals durable — best effort *by design*: if this
        // directory sync is lost to a crash, the retired files reappear
        // on reopen, where recovery skips fully-covered segments and
        // ignores superseded snapshots. Stale files cost disk space,
        // never correctness, so a failure here is recorded as a
        // `store.fault` warn event instead of failing the compaction.
        if stats.snapshots_retired + stats.segments_retired > 0 {
            if let Err(e) = self.vfs.sync_dir(&self.dir) {
                record_fault(format!(
                    "post-retirement dir sync failed (best-effort; stale files may \
                     reappear after a crash): {e}"
                ));
            }
        }
        self.snapshot_seq = self.last_seq;
        self.bytes_since_snapshot = 0;
        self.telemetry
            .set_gauges(self.last_seq, self.snapshot_seq, self.writer.len());
        obs::record_since_named("store.compaction_ns", compaction_started);
        Ok(stats)
    }

    /// Compact if the post-snapshot log exceeds
    /// [`StoreConfig::compact_log_bytes`]; otherwise, if the log has
    /// already grown past [`StoreConfig::log_growth_warn_bytes`], record
    /// a warn-level `store.log_growth` event instead of deferring
    /// silently.
    pub fn maybe_compact(&mut self) -> Result<Option<CompactionStats>> {
        if self.bytes_since_snapshot >= self.config.compact_log_bytes {
            return self.compact().map(Some);
        }
        if self.bytes_since_snapshot >= self.config.log_growth_warn_bytes {
            obs::event(
                obs::Level::Warn,
                "store.log_growth",
                format!(
                    "compaction deferred with {} post-snapshot log bytes \
                     (warn bound {}, compaction bound {})",
                    self.bytes_since_snapshot,
                    self.config.log_growth_warn_bytes,
                    self.config.compact_log_bytes
                ),
            );
        }
        Ok(None)
    }
}

impl<V: Vfs> Drop for DurableGraph<V> {
    fn drop(&mut self) {
        if self.locked {
            lock::release(&self.vfs, &self.dir);
        }
    }
}

/// A degradation-tolerant, read-only view of a store directory.
///
/// Where [`DurableGraph::open`] fails closed on any damage outside the
/// active segment's torn tail, a read-only open serves the **newest
/// loadable snapshot plus the longest cleanly replayable log prefix**,
/// reporting what it had to give up. It takes no `LOCK` (it never
/// writes), so it also works beside a live writer — the graph is then a
/// point-in-time prefix of that writer's history.
pub struct ReadOnlyStore {
    graph: Graph,
    last_seq: u64,
    snapshot_seq: u64,
    records_replayed: u64,
    degraded: bool,
    issues: Vec<String>,
}

impl ReadOnlyStore {
    /// Open `dir` read-only; never takes a lock, never writes, and
    /// tolerates damage by serving the longest consistent prefix.
    /// Emits a `store.degraded` warn event when damage forced it to
    /// stop short of the full log.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_on(&StdFs, dir)
    }

    /// [`ReadOnlyStore::open`] against an explicit backend.
    pub fn open_on<V: Vfs>(vfs: &V, dir: &Path) -> Result<Self> {
        let (report, graph) = crate::fsck::fsck_with_graph_in(vfs, dir)?;
        let degraded = report.verdict == crate::fsck::FsckVerdict::Degraded;
        if degraded {
            obs::counter("store.degraded").inc();
            obs::event(
                obs::Level::Warn,
                "store.degraded",
                format!(
                    "read-only open of {} serving seq {} of a damaged log: {}",
                    dir.display(),
                    report.last_seq,
                    report.issues.join("; ")
                ),
            );
        }
        Ok(Self {
            graph,
            last_seq: report.last_seq,
            snapshot_seq: report.usable_snapshot_seq,
            records_replayed: report.records_replayable,
            degraded,
            issues: report.issues,
        })
    }

    /// The recovered graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume the view and keep just the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Highest sequence number the served graph reflects.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Sequence of the snapshot the graph was rebuilt from.
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Log records replayed on top of that snapshot.
    pub fn records_replayed(&self) -> u64 {
        self.records_replayed
    }

    /// Whether damage forced recovery to stop before the end of the
    /// log (a writable [`DurableGraph::open`] would have failed).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Human-readable descriptions of everything recovery gave up on.
    pub fn issues(&self) -> &[String] {
        &self.issues
    }
}

/// Append one record, rotating to a fresh segment first if the active
/// one is over budget. Free function so [`DurableGraph::repair`]'s sink
/// can call it with split borrows.
fn append_with_rotation<V: Vfs>(
    vfs: &V,
    writer: &mut SegmentWriter<V>,
    dir: &Path,
    segment_max_bytes: u64,
    seq: u64,
    m: &Mutation,
) -> Result<u64> {
    if writer.len() >= segment_max_bytes && !writer.is_empty() {
        writer.sync()?;
        *writer = SegmentWriter::create_in(vfs, dir, seq)?;
    }
    writer.append(seq, m)
}

/// Round-buffering journal sink for [`DurableGraph::repair`]: applied
/// ops accumulate in memory and reach the WAL only at the engine's
/// `round_committed` boundary, so the journal only ever holds whole
/// rounds. The engine fires the boundary after every applied round
/// (including the short final batch before a `max_repairs` return) and
/// abandons a budget-tripped round *before* applying anything, so a
/// cancelled durable repair recovers to exactly a committed-round
/// prefix. The `Drop` flush is defense-in-depth: any op delivered
/// without a closing boundary still lands in the log rather than
/// silently drifting the in-memory graph ahead of it.
struct WalRoundSink<'a, V: Vfs> {
    vfs: &'a V,
    writer: &'a mut SegmentWriter<V>,
    dir: &'a Path,
    segment_max_bytes: u64,
    last_seq: &'a mut u64,
    bytes_since_snapshot: &'a mut u64,
    telemetry: &'a StoreTelemetry,
    pending: Vec<Mutation>,
    io_err: &'a mut Option<StoreError>,
}

impl<V: Vfs> RepairSink for WalRoundSink<'_, V> {
    fn op(&mut self, op: &AppliedOp) {
        // After a failed append the log can no longer reproduce the
        // in-memory state; stop journaling and let the caller poison.
        if self.io_err.is_none() {
            self.pending.push(Mutation::from_applied(op));
        }
    }

    fn round_committed(&mut self) {
        if self.io_err.is_some() {
            self.pending.clear();
            return;
        }
        for m in self.pending.drain(..) {
            let seq = *self.last_seq + 1;
            let append_started = obs::timer();
            match append_with_rotation(
                self.vfs,
                self.writer,
                self.dir,
                self.segment_max_bytes,
                seq,
                &m,
            ) {
                Ok(written) => {
                    obs::record_since(&self.telemetry.append_ns, append_started);
                    *self.last_seq = seq;
                    *self.bytes_since_snapshot += written;
                }
                Err(e) => {
                    *self.io_err = Some(e);
                    break;
                }
            }
        }
        self.pending.clear();
    }
}

impl<V: Vfs> Drop for WalRoundSink<'_, V> {
    fn drop(&mut self) {
        if !self.pending.is_empty() {
            debug_assert!(false, "repair engine dropped ops without a round boundary");
            self.round_committed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::list_snapshots;
    use crate::wal::list_segments;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            segment_max_bytes: 256, // force frequent rotation in tests
            compact_log_bytes: 1024,
            keep_snapshots: 2,
            sync_on_commit: true,
            log_growth_warn_bytes: 1024,
        }
    }

    fn populate(s: &mut DurableGraph, persons: usize) -> Vec<NodeId> {
        let city = s.add_node("City").unwrap();
        let mut out = Vec::new();
        for i in 0..persons {
            let n = s
                .add_node_with_attrs(
                    "Person",
                    &[("name".to_owned(), Value::from(format!("p{i}")))],
                )
                .unwrap();
            s.add_edge(n, city, "livesIn").unwrap();
            out.push(n);
        }
        out
    }

    #[test]
    fn create_open_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut s = DurableGraph::create(&dir, small_config()).unwrap();
        let persons = populate(&mut s, 10);
        s.remove_node(persons[3]).unwrap();
        s.commit().unwrap();
        let dump = s.graph().dump_slots();
        let last_seq = s.last_seq();
        drop(s);

        let s = DurableGraph::open(&dir, small_config()).unwrap();
        assert_eq!(s.graph().dump_slots(), dump);
        assert_eq!(s.last_seq(), last_seq);
        assert_eq!(s.last_recovery().records_replayed, last_seq);
        assert_eq!(s.last_recovery().torn_tail_bytes, 0);
        s.graph().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmpdir("rotate");
        let mut s = DurableGraph::create(&dir, small_config()).unwrap();
        populate(&mut s, 30);
        s.commit().unwrap();
        let status = s.status().unwrap();
        assert!(status.segments > 1, "expected rotation: {status:?}");
        let dump = s.graph().dump_slots();
        drop(s);
        let s = DurableGraph::open(&dir, small_config()).unwrap();
        assert_eq!(s.graph().dump_slots(), dump);
        assert!(s.last_recovery().segments_read > 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_retires_segments_and_preserves_state() {
        let dir = tmpdir("compact");
        let mut s = DurableGraph::create(&dir, small_config()).unwrap();
        let persons = populate(&mut s, 30);
        let before = s.status().unwrap();
        assert!(before.segments > 1);
        let cstats = s.compact().unwrap();
        assert!(cstats.segments_retired >= before.segments);
        assert_eq!(cstats.snapshot_seq, s.last_seq());
        let after = s.status().unwrap();
        assert_eq!(after.segments, 1, "only the fresh active segment remains");
        assert_eq!(after.log_bytes_since_snapshot, 0);

        // Ids remain stable across compaction, and post-compaction
        // mutations land in the new segment.
        s.set_attr(persons[0], "name", Value::from("renamed")).unwrap();
        s.commit().unwrap();
        let dump = s.graph().dump_slots();
        drop(s);
        let s = DurableGraph::open(&dir, small_config()).unwrap();
        assert_eq!(s.graph().dump_slots(), dump);
        assert_eq!(s.last_recovery().snapshot_seq, cstats.snapshot_seq);
        assert_eq!(s.last_recovery().records_replayed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maybe_compact_honors_threshold() {
        let dir = tmpdir("maybe");
        let mut s = DurableGraph::create(&dir, small_config()).unwrap();
        assert!(s.maybe_compact().unwrap().is_none());
        populate(&mut s, 40); // well past 1024 log bytes
        assert!(s.maybe_compact().unwrap().is_some());
        assert!(s.maybe_compact().unwrap().is_none(), "freshly compacted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmpdir("torn");
        let mut s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        populate(&mut s, 5);
        s.commit().unwrap();
        let dump = s.graph().dump_slots();
        let last_seq = s.last_seq();
        drop(s);
        // Simulate a crash mid-append: garbage at the tail of the
        // (single) active segment.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0xAA; 13]);
        std::fs::write(&seg, &bytes).unwrap();

        let mut s = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.last_recovery().torn_tail_bytes, 13);
        assert_eq!(s.graph().dump_slots(), dump);
        assert_eq!(s.last_seq(), last_seq);
        // New appends go after the truncated tail and survive reopen.
        s.add_node("Late").unwrap();
        s.commit().unwrap();
        drop(s);
        let s = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.last_seq(), last_seq + 1);
        assert_eq!(s.last_recovery().torn_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_one() {
        let dir = tmpdir("snapfall");
        let mut s = DurableGraph::create(&dir, small_config()).unwrap();
        populate(&mut s, 10);
        s.compact().unwrap(); // snapshot A
        s.add_node("Extra").unwrap();
        s.compact().unwrap(); // snapshot B (A retained: keep_snapshots=2)
        s.add_node("Post").unwrap();
        s.commit().unwrap();
        let dump = s.graph().dump_slots();
        drop(s);

        // Trash the newest snapshot's payload.
        let (_, newest) = list_snapshots(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let s = DurableGraph::open(&dir, small_config()).unwrap();
        assert_eq!(s.last_recovery().snapshots_skipped, 1);
        assert_eq!(s.graph().dump_slots(), dump, "older snapshot + log replay");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_store_and_open_refuses_empty_dir() {
        let dir = tmpdir("guards");
        let s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        drop(s);
        assert!(matches!(
            DurableGraph::create(&dir, StoreConfig::default()),
            Err(StoreError::AlreadyExists(_))
        ));
        let empty = tmpdir("guards-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            DurableGraph::open(&empty, StoreConfig::default()),
            Err(StoreError::NotAStore(_))
        ));
        // open_or_create covers both.
        assert!(DurableGraph::open_or_create(&dir, StoreConfig::default()).is_ok());
        assert!(DurableGraph::open_or_create(&empty, StoreConfig::default()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn create_with_seeds_genesis_snapshot() {
        let dir = tmpdir("seeded");
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("Q");
        g.add_edge_named(a, b, "r").unwrap();
        let dump = g.dump_slots();
        let s = DurableGraph::create_with(&dir, StoreConfig::default(), g).unwrap();
        assert_eq!(s.graph().dump_slots(), dump);
        drop(s);
        let s = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.graph().dump_slots(), dump);
        assert_eq!(s.last_recovery().records_replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutators_validate_before_journaling() {
        let dir = tmpdir("validate");
        let mut s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        let n = s.add_node("P").unwrap();
        let seq = s.last_seq();
        // Rejected ops journal nothing.
        assert!(s.remove_node(NodeId(99)).is_err());
        assert!(s.add_edge(n, NodeId(99), "r").is_err());
        assert!(s.merge_nodes(n, n, true).is_err());
        assert!(s.set_attr(NodeId(99), "k", Value::Int(1)).is_err());
        assert_eq!(s.last_seq(), seq, "failed mutations must not journal");
        drop(s);
        let s = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.last_seq(), seq);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_store_refuses_mutation_but_recovers_on_reopen() {
        let dir = tmpdir("poison");
        let mut s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        let n = s.add_node("P").unwrap();
        s.commit().unwrap();
        let durable = s.graph().dump_slots();
        let seq = s.last_seq();

        // Simulate a journal failure having happened (the state every
        // append error sets).
        s.poison = Some(Poison::Append);
        assert!(s.is_poisoned());
        assert!(matches!(s.add_node("Q"), Err(StoreError::Poisoned)));
        assert!(matches!(s.remove_node(n), Err(StoreError::Poisoned)));
        assert!(matches!(
            s.set_attr(n, "k", Value::Int(1)),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(s.compact(), Err(StoreError::Poisoned)));
        assert!(matches!(
            s.repair(&grepair_core::RepairEngine::default(), &[]),
            Err(StoreError::Poisoned)
        ));
        // Reads and fsync of the valid prefix stay available.
        assert_eq!(s.graph().num_nodes(), 1);
        s.commit().unwrap();
        assert_eq!(s.last_seq(), seq, "nothing journaled while poisoned");
        drop(s);

        // Reopen recovers the last durable state, unpoisoned.
        let mut s = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert!(!s.is_poisoned());
        assert_eq!(s.graph().dump_slots(), durable);
        s.add_node("Q").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn status_reports_shape() {
        let dir = tmpdir("status");
        let mut s = DurableGraph::create(&dir, small_config()).unwrap();
        populate(&mut s, 8);
        let st = s.status().unwrap();
        assert_eq!(st.live_nodes, 9);
        assert_eq!(st.live_edges, 8);
        assert_eq!(st.last_seq, s.last_seq());
        assert!(st.log_bytes_since_snapshot > 0);
        assert!(st.segment_bytes > 0);
        assert_eq!(st.snapshot_age_seqs, s.last_seq(), "no snapshot yet");
        assert!(st.active_log_bytes > 0);
        let text = st.to_string();
        assert!(text.contains("|V|=9"), "{text}");
        assert!(text.contains("snapshot age:"), "{text}");

        // After compaction the snapshot covers everything journaled.
        s.compact().unwrap();
        let st = s.status().unwrap();
        assert_eq!(st.snapshot_age_seqs, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deferred_compaction_over_warn_bound_records_event() {
        let dir = tmpdir("warnbound");
        let mut s = DurableGraph::create(
            &dir,
            StoreConfig {
                log_growth_warn_bytes: 64, // warn well before the 1 KiB compact bound
                ..small_config()
            },
        )
        .unwrap();
        populate(&mut s, 3); // a few hundred log bytes: past warn, under compact
        let before = grepair_obs::snapshot_json();
        assert!(s.maybe_compact().unwrap().is_none(), "under compact bound");
        let after = grepair_obs::snapshot_json();
        let grew = after.matches("store.log_growth").count()
            > before.matches("store.log_growth").count();
        assert!(grew, "deferral past the warn bound must record an event");
        std::fs::remove_dir_all(&dir).ok();
    }
}
