//! Store health checking: dry-run recovery without taking the lock.
//!
//! [`fsck`] walks a store directory exactly the way [`crate::DurableGraph::open`]
//! would — newest loadable snapshot, ordered replay, torn-tail detection —
//! but *diagnoses* instead of failing: every snapshot and segment gets a
//! health row, damage is collected as issues, and the report says where
//! recovery stops and whether a writable open would succeed
//! ([`FsckVerdict`]). Nothing is modified: no truncation, no lock file,
//! no segment rewrite.
//!
//! [`crate::ReadOnlyStore`] is built on the same walk: it keeps the graph fsck
//! reconstructs, serving the newest loadable snapshot plus the longest
//! cleanly replayable log prefix of a damaged store.

use crate::error::{Result, StoreError};
use crate::lock::{self, LockStatus};
use crate::snapshot::{list_snapshots_in, read_snapshot_in};
use crate::store::dir_has_store_in;
use crate::vfs::{StdFs, Vfs};
use crate::wal::{list_segments_in, read_segment_prefix_in, SegmentContents};
use grepair_graph::Graph;
use grepair_obs as obs;
use std::path::{Path, PathBuf};

/// Overall health classification — keyed to what a *writable*
/// [`crate::DurableGraph::open`] of the same directory would do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsckVerdict {
    /// Every file validates end to end; open would replay everything.
    Clean,
    /// The only damage is a torn tail on the active segment — the
    /// normal residue of a crash mid-append. Open succeeds and
    /// truncates it.
    TornTail,
    /// Damage a writable open refuses to absorb (mid-log corruption,
    /// sequence gap, torn non-active segment, undecodable record).
    /// Only [`crate::ReadOnlyStore`] can serve this store, as a prefix.
    Degraded,
}

impl std::fmt::Display for FsckVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckVerdict::Clean => write!(f, "clean"),
            FsckVerdict::TornTail => write!(f, "torn-tail"),
            FsckVerdict::Degraded => write!(f, "degraded"),
        }
    }
}

/// Health of one snapshot file.
#[derive(Clone, Debug)]
pub struct SnapshotHealth {
    /// Sequence the snapshot claims to cover.
    pub seq: u64,
    /// The file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// `true` if the snapshot reads, checksums and restores cleanly.
    pub loadable: bool,
    /// Human-readable status (`ok`, `superseded`, `damaged: …`).
    pub status: String,
}

/// Health of one WAL segment file.
#[derive(Clone, Debug)]
pub struct SegmentHealth {
    /// Base sequence from the file name.
    pub base_seq: u64,
    /// The file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Decodable records in the file (replayed or not).
    pub records: u64,
    /// Bytes past the last valid frame.
    pub torn_bytes: u64,
    /// Human-readable status (`clean`, `covered by snapshot`,
    /// `torn tail`, `damaged: …`).
    pub status: String,
}

/// Everything [`fsck`] learned about a store directory.
#[derive(Clone, Debug)]
pub struct FsckReport {
    /// The directory examined.
    pub dir: PathBuf,
    /// State of the `LOCK` file.
    pub lock: LockStatus,
    /// One row per snapshot file, newest first.
    pub snapshots: Vec<SnapshotHealth>,
    /// One row per segment file, in base-sequence order.
    pub segments: Vec<SegmentHealth>,
    /// Sequence of the newest snapshot that loads cleanly (0 = genesis).
    pub usable_snapshot_seq: u64,
    /// Highest sequence recovery can serve (snapshot + replayable prefix).
    pub last_seq: u64,
    /// Log records replayable on top of the usable snapshot.
    pub records_replayable: u64,
    /// Where valid data ends, if recovery stops short of the end of a
    /// file: `(file, byte offset)`. A writable open truncates here (torn
    /// tail) or refuses (mid-log damage).
    pub truncation: Option<(PathBuf, u64)>,
    /// Human-readable descriptions of every problem found.
    pub issues: Vec<String>,
    /// Overall classification.
    pub verdict: FsckVerdict,
}

impl FsckReport {
    /// Multi-line human-readable rendering (the CLI's default output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "fsck {}: {}", self.dir.display(), self.verdict);
        let _ = writeln!(out, "lock: {}", self.lock);
        let _ = writeln!(
            out,
            "recoverable: seq {} ({} snapshot + {} replayable records)",
            self.last_seq, self.usable_snapshot_seq, self.records_replayable
        );
        if let Some((path, off)) = &self.truncation {
            let _ = writeln!(out, "valid data ends at byte {off} of {}", path.display());
        }
        let _ = writeln!(out, "snapshots: {}", self.snapshots.len());
        for s in &self.snapshots {
            let _ = writeln!(
                out,
                "  snap seq {} ({} bytes): {}",
                s.seq, s.bytes, s.status
            );
        }
        let _ = writeln!(out, "segments: {}", self.segments.len());
        for s in &self.segments {
            let _ = writeln!(
                out,
                "  wal base {} ({} bytes, {} records): {}",
                s.base_seq, s.bytes, s.records, s.status
            );
        }
        if self.issues.is_empty() {
            let _ = writeln!(out, "issues: none");
        } else {
            let _ = writeln!(out, "issues: {}", self.issues.len());
            for i in &self.issues {
                let _ = writeln!(out, "  - {i}");
            }
        }
        out
    }

    /// Single-object JSON rendering (the CLI's `--format json` output).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"dir\":\"{}\",\"verdict\":\"{}\",\"lock\":\"{}\",\
             \"usable_snapshot_seq\":{},\"last_seq\":{},\"records_replayable\":{}",
            esc(&self.dir.display().to_string()),
            self.verdict,
            esc(&self.lock.to_string()),
            self.usable_snapshot_seq,
            self.last_seq,
            self.records_replayable
        );
        match &self.truncation {
            Some((path, off)) => {
                let _ = write!(
                    out,
                    ",\"truncation\":{{\"path\":\"{}\",\"valid_len\":{off}}}",
                    esc(&path.display().to_string())
                );
            }
            None => out.push_str(",\"truncation\":null"),
        }
        out.push_str(",\"snapshots\":[");
        for (i, s) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"path\":\"{}\",\"bytes\":{},\"loadable\":{},\"status\":\"{}\"}}",
                s.seq,
                esc(&s.path.display().to_string()),
                s.bytes,
                s.loadable,
                esc(&s.status)
            );
        }
        out.push_str("],\"segments\":[");
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"base_seq\":{},\"path\":\"{}\",\"bytes\":{},\"records\":{},\
                 \"torn_bytes\":{},\"status\":\"{}\"}}",
                s.base_seq,
                esc(&s.path.display().to_string()),
                s.bytes,
                s.records,
                s.torn_bytes,
                esc(&s.status)
            );
        }
        out.push_str("],\"issues\":[");
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(issue));
        }
        out.push_str("]}");
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Check the store in `dir` without modifying anything.
pub fn fsck(dir: &Path) -> Result<FsckReport> {
    fsck_in(&StdFs, dir)
}

/// [`fsck`] against an explicit backend.
pub fn fsck_in<V: Vfs>(vfs: &V, dir: &Path) -> Result<FsckReport> {
    fsck_with_graph_in(vfs, dir).map(|(report, _)| report)
}

/// The fsck walk, also returning the graph it reconstructed (the newest
/// loadable snapshot plus every cleanly replayable record) — the engine
/// under [`crate::ReadOnlyStore::open`].
pub(crate) fn fsck_with_graph_in<V: Vfs>(vfs: &V, dir: &Path) -> Result<(FsckReport, Graph)> {
    let _span = obs::span("store.fsck", "store");
    let fsck_started = obs::timer();
    if !vfs.is_dir(dir) || !dir_has_store_in(vfs, dir)? {
        return Err(StoreError::NotAStore(dir.to_path_buf()));
    }

    let mut report = FsckReport {
        dir: dir.to_path_buf(),
        lock: lock::status(vfs, dir),
        snapshots: Vec::new(),
        segments: Vec::new(),
        usable_snapshot_seq: 0,
        last_seq: 0,
        records_replayable: 0,
        truncation: None,
        issues: Vec::new(),
        verdict: FsckVerdict::Clean,
    };

    // Snapshots, newest first. The newest one that reads, checksums and
    // restores cleanly is what recovery would start from; newer damaged
    // ones are issues (recovery skips them, losing nothing — the log
    // still covers their records) but do not degrade the verdict. Older
    // snapshots are validated too, for the health report.
    let mut graph = Graph::new();
    let mut found_usable = false;
    for (seq, path) in list_snapshots_in(vfs, dir)?.into_iter().rev() {
        let bytes = vfs.file_len(&path).unwrap_or(0);
        let outcome = read_snapshot_in(vfs, &path).and_then(|(s, dump)| {
            Graph::restore_slots(&dump).map(|g| (s, g)).map_err(|e| {
                StoreError::Corrupt {
                    path: path.clone(),
                    detail: e.to_string(),
                }
            })
        });
        let row = match outcome {
            Ok((s, g)) if !found_usable => {
                found_usable = true;
                report.usable_snapshot_seq = s;
                graph = g;
                SnapshotHealth {
                    seq,
                    path,
                    bytes,
                    loadable: true,
                    status: "ok".into(),
                }
            }
            Ok(_) => SnapshotHealth {
                seq,
                path,
                bytes,
                loadable: true,
                status: "superseded".into(),
            },
            Err(e) => {
                report.issues.push(format!("snapshot seq {seq}: {e}"));
                SnapshotHealth {
                    seq,
                    path,
                    bytes,
                    loadable: false,
                    status: format!("damaged: {e}"),
                }
            }
        };
        report.snapshots.push(row);
    }
    let snap_seq = report.usable_snapshot_seq;

    // Replay walk over the segments, mirroring recovery's skip and
    // ordering rules, but reading leniently (a damaged segment yields
    // its valid prefix instead of an error) and never bailing: after
    // the point recovery would stop, remaining files are still health-
    // checked — their records counted but not replayed.
    let segments = list_segments_in(vfs, dir)?;
    let mut next_seq = snap_seq + 1;
    let mut stopped = false; // recovery cannot proceed past damage
    for (i, (base, path)) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        let bytes = vfs.file_len(path).unwrap_or(0);
        let covered = !is_last && segments[i + 1].0 <= next_seq && !stopped;
        let contents: SegmentContents = match read_segment_prefix_in(vfs, path, Some(*base)) {
            Ok(c) => c,
            Err(e) => {
                // Header-level damage: not one record is attributable.
                report.issues.push(format!("segment base {base}: {e}"));
                if !covered && !stopped {
                    stopped = true;
                    report.verdict = FsckVerdict::Degraded;
                }
                report.segments.push(SegmentHealth {
                    base_seq: *base,
                    path: path.clone(),
                    bytes,
                    records: 0,
                    torn_bytes: bytes,
                    status: format!("damaged: {e}"),
                });
                continue;
            }
        };
        let status: String;
        if covered {
            status = "covered by snapshot".into();
            if contents.is_torn() {
                // Harmless — recovery never reads this file — but worth
                // surfacing: the damage predates the covering snapshot.
                report.issues.push(format!(
                    "segment base {base}: {} invalid bytes (covered by snapshot; \
                     recovery unaffected)",
                    contents.torn_bytes
                ));
            }
        } else if !stopped {
            // Replay what recovery would replay.
            let mut replay_err: Option<String> = None;
            for rec in &contents.records {
                if rec.seq < next_seq {
                    continue;
                }
                if rec.seq != next_seq {
                    replay_err = Some(format!(
                        "sequence gap: expected {next_seq}, found {}",
                        rec.seq
                    ));
                    break;
                }
                if let Err(e) = rec.mutation.apply(&mut graph) {
                    replay_err = Some(format!("record seq {} unreplayable: {e}", rec.seq));
                    break;
                }
                report.records_replayable += 1;
                next_seq += 1;
            }
            if let Some(detail) = replay_err {
                report.issues.push(format!("segment base {base}: {detail}"));
                report.verdict = FsckVerdict::Degraded;
                stopped = true;
                status = format!("damaged: {detail}");
            } else if contents.is_torn() {
                report.truncation = Some((path.clone(), contents.valid_len));
                if is_last && !contents.mid_log_damage {
                    // The one kind of damage a writable open absorbs.
                    report.issues.push(format!(
                        "segment base {base}: {} torn tail bytes (crash residue; \
                         a writable open truncates them)",
                        contents.torn_bytes
                    ));
                    if report.verdict == FsckVerdict::Clean {
                        report.verdict = FsckVerdict::TornTail;
                    }
                    status = "torn tail".into();
                } else {
                    report.issues.push(format!(
                        "segment base {base}: {} invalid bytes mid-log with \
                         committed records after them",
                        contents.torn_bytes
                    ));
                    report.verdict = FsckVerdict::Degraded;
                    stopped = true;
                    status = "damaged: invalid bytes mid-log".into();
                }
            } else {
                status = "clean".into();
            }
        } else {
            // Past the stop point: count but never replay.
            status = format!(
                "unreachable ({} records beyond the damage point)",
                contents.records.len()
            );
        }
        report.segments.push(SegmentHealth {
            base_seq: *base,
            path: path.clone(),
            bytes,
            records: contents.records.len() as u64,
            torn_bytes: contents.torn_bytes,
            status,
        });
    }
    report.last_seq = next_seq - 1;

    obs::record_since_named("store.fsck_ns", fsck_started);
    obs::counter("store.fsck_runs").inc();
    Ok((report, graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DurableGraph, StoreConfig};
    use crate::wal::list_segments;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-fsck-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            segment_max_bytes: 256,
            compact_log_bytes: 1024,
            keep_snapshots: 2,
            sync_on_commit: true,
            log_growth_warn_bytes: 1024,
        }
    }

    fn build(dir: &Path, n: usize) -> DurableGraph {
        let mut s = DurableGraph::create(dir, small_config()).unwrap();
        let city = s.add_node("City").unwrap();
        for i in 0..n {
            let p = s.add_node(&format!("P{i}")).unwrap();
            s.add_edge(p, city, "livesIn").unwrap();
        }
        s.commit().unwrap();
        s
    }

    #[test]
    fn clean_store_is_clean() {
        let dir = tmpdir("clean");
        let s = build(&dir, 10);
        let last_seq = s.last_seq();
        drop(s);
        let report = fsck(&dir).unwrap();
        assert_eq!(report.verdict, FsckVerdict::Clean);
        assert_eq!(report.last_seq, last_seq);
        assert_eq!(report.records_replayable, last_seq);
        assert!(report.issues.is_empty(), "{:?}", report.issues);
        assert_eq!(report.lock, LockStatus::Unlocked);
        assert!(report.truncation.is_none());
        assert!(report.render_text().contains("clean"));
        assert!(report.to_json().contains("\"verdict\":\"clean\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_reported_with_truncation_point() {
        let dir = tmpdir("torn");
        let s = build(&dir, 3);
        let last_seq = s.last_seq();
        drop(s);
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let valid = std::fs::metadata(&seg).unwrap().len();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0xAA; 9]);
        std::fs::write(&seg, &bytes).unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.verdict, FsckVerdict::TornTail);
        assert_eq!(report.last_seq, last_seq, "tail damage loses no records");
        assert_eq!(report.truncation, Some((seg, valid)));
        // And a writable open still succeeds, as the verdict promises.
        assert!(DurableGraph::open(&dir, small_config()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_log_damage_is_degraded_with_prefix_counted() {
        let dir = tmpdir("midlog");
        let s = build(&dir, 20); // rotates: several segments
        drop(s);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 2, "need rotation for this test");
        // Zero out a byte early in the SECOND segment's first record.
        let victim = &segs[1].1;
        let mut bytes = std::fs::read(victim).unwrap();
        let target = crate::wal::SEGMENT_HEADER_LEN as usize + 10;
        bytes[target] ^= 0xFF;
        std::fs::write(victim, &bytes).unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.verdict, FsckVerdict::Degraded);
        // The first segment's records are still replayable…
        assert!(report.records_replayable > 0);
        // …and the segments past the damage are visible but unreached.
        assert!(report
            .segments
            .iter()
            .any(|s| s.status.starts_with("unreachable")));
        // A writable open refuses, as the verdict promises.
        assert!(DurableGraph::open(&dir, small_config()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_newest_snapshot_is_an_issue_but_not_degraded() {
        let dir = tmpdir("snapbad");
        let mut s = build(&dir, 10);
        s.compact().unwrap();
        s.add_node("After").unwrap();
        s.compact().unwrap(); // two snapshots retained
        drop(s);
        let (_, newest) = crate::snapshot::list_snapshots(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.verdict, FsckVerdict::Clean, "{:?}", report.issues);
        assert!(!report.issues.is_empty());
        assert!(report.snapshots.iter().any(|s| !s.loadable));
        assert!(report.snapshots.iter().any(|s| s.loadable));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_refuses_non_store_directories() {
        let dir = tmpdir("nonstore");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(fsck(&dir), Err(StoreError::NotAStore(_))));
        assert!(matches!(
            fsck(&dir.join("missing")),
            Err(StoreError::NotAStore(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
