//! Storage-backend abstraction: every file operation the store performs
//! goes through a [`Vfs`], so the durability logic can be exercised
//! against a deterministic fault-injecting backend ([`FaultyFs`]) while
//! production runs on the zero-cost passthrough [`StdFs`].
//!
//! The trait surface is exactly the operations the store needs — create,
//! append, read-whole-file, rename, remove, list, length, data sync and
//! directory sync — nothing more. Keeping it narrow is what makes the
//! fault model exhaustive: `FaultyFs` can enumerate *every* injection
//! point because every side effect funnels through these methods.
//!
//! ## Retry policy
//!
//! [`with_retry`] wraps *whole-file and metadata* operations (create,
//! open, read, rename, remove) in a bounded retry-with-backoff for
//! transient `Interrupted`/`WouldBlock`/`TimedOut` errors, recording a
//! `store.retry` counter and warn event per attempt. Two operation
//! classes are deliberately **never** retried:
//!
//! - **Writes** — a failed `write_all` may have landed a prefix of the
//!   buffer; blindly re-writing would duplicate bytes mid-frame and
//!   corrupt the log. The caller poisons the store instead.
//! - **Fsyncs** — after a failed `fsync` the kernel may drop the dirty
//!   pages *and clear the error*, so a retried fsync can report success
//!   while the data is gone (the "fsyncgate" failure mode). The caller
//!   treats the first failure as final and poisons the store.

use std::io;
use std::path::Path;

/// An open file handle obtained from a [`Vfs`].
///
/// Writes always append at the handle's position (the store only ever
/// appends or writes fresh files front to back).
pub trait VfsFile: Send {
    /// Write the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file *data* to stable storage (`fdatasync` semantics).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The file operations the store performs, as a swappable backend.
///
/// Production uses [`StdFs`]; tests use [`FaultyFs`]. Static dispatch
/// throughout — [`crate::DurableGraph`] defaults its backend parameter
/// to `StdFs`, so the production build pays no indirection.
pub trait Vfs: Send + Sync {
    /// The backend's file handle type.
    type File: VfsFile;

    /// Create a file that must not already exist.
    fn create_new(&self, path: &Path) -> io::Result<Self::File>;
    /// Create a file, truncating it if it exists.
    fn create(&self, path: &Path) -> io::Result<Self::File>;
    /// Open an existing file for appending, first truncating it to
    /// `truncate_to` bytes (dropping a crash-torn tail).
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Self::File>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to` (replacing `to` if it exists).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` is an existing directory.
    fn is_dir(&self, path: &Path) -> bool;
    /// File names (not paths) of the entries in `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Current length of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Flush the *directory entry table* of `dir` to stable storage —
    /// what makes creations, renames and removals in it survive a crash.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production backend: a zero-sized passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdFs;

impl VfsFile for std::fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }
}

impl Vfs for StdFs {
    type File = std::fs::File;

    fn create_new(&self, path: &Path) -> io::Result<Self::File> {
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
    }
    fn create(&self, path: &Path) -> io::Result<Self::File> {
        std::fs::File::create(path)
    }
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Self::File> {
        let file = std::fs::OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(truncate_to)?;
        let mut file = file;
        io::Seek::seek(&mut file, io::SeekFrom::End(0))?;
        Ok(file)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                out.push(name.to_owned());
            }
        }
        Ok(out)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }
}

/// Bounded retry-with-backoff for transient errors on operations that
/// are safe to repeat (see the module docs for why writes and fsyncs
/// are excluded). Each retry records a `store.retry` counter tick and a
/// warn event naming the operation.
pub(crate) fn with_retry<T>(
    what: &'static str,
    mut f: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    const ATTEMPTS: u32 = 3;
    let mut delay = std::time::Duration::from_micros(200);
    let mut attempt = 0;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(e.kind()) && attempt + 1 < ATTEMPTS => {
                grepair_obs::counter("store.retry").inc();
                grepair_obs::event(
                    grepair_obs::Level::Warn,
                    "store.retry",
                    format!("{what}: transient {e}; retrying (attempt {})", attempt + 1),
                );
                std::thread::sleep(delay);
                delay *= 4;
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// ---- fault injection -------------------------------------------------------

/// The injectable operation classes (each one is an injection point).
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// `create_new` / `create`.
    Create,
    /// `open_append`.
    Open,
    /// `VfsFile::write_all`.
    Write,
    /// `VfsFile::sync_data`.
    Sync,
    /// `rename`.
    Rename,
    /// `remove_file`.
    Remove,
    /// `sync_dir`.
    SyncDir,
}

/// The error an injected fault surfaces as.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedError {
    /// `ENOSPC` — the disk filled up.
    Enospc,
    /// `EIO` — a hard device error.
    Eio,
    /// `EINTR` — a transient interruption ([`with_retry`]-class).
    Interrupted,
}

#[cfg(any(test, feature = "fault-injection"))]
impl InjectedError {
    fn to_io(self) -> io::Error {
        match self {
            // Raw errno values (Linux) so the error carries a realistic
            // kind without depending on unstable `ErrorKind` variants.
            InjectedError::Enospc => io::Error::from_raw_os_error(28),
            InjectedError::Eio => io::Error::from_raw_os_error(5),
            InjectedError::Interrupted => io::ErrorKind::Interrupted.into(),
        }
    }
}

/// How many operations of each class a [`FaultyFs`] has seen.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultOpCounts {
    /// File creations.
    pub creates: usize,
    /// Append re-opens.
    pub opens: usize,
    /// Buffer writes.
    pub writes: usize,
    /// File data syncs.
    pub syncs: usize,
    /// Renames.
    pub renames: usize,
    /// File removals.
    pub removes: usize,
    /// Directory syncs.
    pub dir_syncs: usize,
}

#[cfg(any(test, feature = "fault-injection"))]
mod faulty {
    use super::*;
    use std::collections::BTreeMap;
    use std::path::PathBuf;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Inode {
        /// Content as the running process sees it.
        current: Vec<u8>,
        /// Content as of the last successful `sync_data` — what survives
        /// a crash (if the name survives too).
        durable: Vec<u8>,
    }

    struct Pending {
        op: FaultOp,
        countdown: usize,
        err: InjectedError,
        /// For `Write` faults: bytes of the buffer that land before the
        /// error (a torn write).
        torn_keep: Option<usize>,
    }

    #[derive(Default)]
    struct State {
        dirs: std::collections::BTreeSet<PathBuf>,
        /// Directory view of the running process.
        names: BTreeMap<PathBuf, usize>,
        /// Directory view after a crash: updated only by `sync_dir`.
        durable_names: BTreeMap<PathBuf, usize>,
        inodes: Vec<Inode>,
        ops: usize,
        crash_at: Option<usize>,
        /// If the crash-point op is a write, land this many bytes first.
        crash_torn_keep: Option<usize>,
        pending: Vec<Pending>,
        counts: FaultOpCounts,
    }

    impl State {
        /// Count the op, then decide its fate: proceed, fail with an
        /// injected error, or fail as part of a simulated crash. For
        /// `Write` ops the returned `Option<usize>` carries the torn
        /// prefix length to land before failing.
        fn gate(&mut self, op: FaultOp) -> Result<(), (io::Error, Option<usize>)> {
            let idx = self.ops;
            self.ops += 1;
            match op {
                FaultOp::Create => self.counts.creates += 1,
                FaultOp::Open => self.counts.opens += 1,
                FaultOp::Write => self.counts.writes += 1,
                FaultOp::Sync => self.counts.syncs += 1,
                FaultOp::Rename => self.counts.renames += 1,
                FaultOp::Remove => self.counts.removes += 1,
                FaultOp::SyncDir => self.counts.dir_syncs += 1,
            }
            if let Some(c) = self.crash_at {
                if idx >= c {
                    let torn = if idx == c && op == FaultOp::Write {
                        self.crash_torn_keep
                    } else {
                        None
                    };
                    return Err((
                        io::Error::other(format!("simulated crash at op {c}")),
                        torn,
                    ));
                }
            }
            if let Some(i) = self.pending.iter().position(|p| p.op == op) {
                if self.pending[i].countdown == 0 {
                    let p = self.pending.remove(i);
                    return Err((p.err.to_io(), p.torn_keep));
                }
                self.pending[i].countdown -= 1;
            }
            Ok(())
        }
    }

    /// A deterministic, in-memory fault-injection backend.
    ///
    /// Models one directory tree where every file has *current* content
    /// (what the process sees) and *durable* content (what survives a
    /// crash): `sync_data` makes a file's bytes durable, `sync_dir`
    /// makes the current name set durable. A simulated crash is simply
    /// "fail every operation from index `k` on"; the durable image can
    /// then be [materialized](FaultyFs::materialize_durable) to a real
    /// directory and reopened with [`StdFs`] to drive real recovery.
    ///
    /// Clonable handle (shared state), so tests keep one while the
    /// store owns another.
    #[derive(Clone, Default)]
    pub struct FaultyFs {
        state: Arc<Mutex<State>>,
    }

    /// Handle into a [`FaultyFs`] file; writes append.
    pub struct FaultyFile {
        state: Arc<Mutex<State>>,
        inode: usize,
    }

    impl std::fmt::Debug for FaultyFile {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("FaultyFile").field("inode", &self.inode).finish()
        }
    }

    impl FaultyFs {
        /// A fresh, empty, fault-free filesystem.
        pub fn new() -> Self {
            Self::default()
        }

        /// Total faultable operations performed so far — the number of
        /// injection points a clean run exposes.
        pub fn ops(&self) -> usize {
            self.state.lock().unwrap().ops
        }

        /// Per-class operation counts.
        pub fn op_counts(&self) -> FaultOpCounts {
            self.state.lock().unwrap().counts
        }

        /// Simulate a crash at operation index `at` (0-based): that
        /// operation and every later one fail, with no effect on state.
        pub fn set_crash_point(&self, at: usize) {
            let mut st = self.state.lock().unwrap();
            st.crash_at = Some(at);
            st.crash_torn_keep = None;
        }

        /// Like [`FaultyFs::set_crash_point`], but if the crash-point
        /// operation is a write, its first `keep` bytes land — a write
        /// torn mid-frame by the crash.
        pub fn set_torn_crash_point(&self, at: usize, keep: usize) {
            let mut st = self.state.lock().unwrap();
            st.crash_at = Some(at);
            st.crash_torn_keep = Some(keep);
        }

        /// Fail the `nth` upcoming operation of class `op` (0-based,
        /// counted from now) with `err`; one-shot.
        pub fn inject(&self, op: FaultOp, nth: usize, err: InjectedError) {
            self.state.lock().unwrap().pending.push(Pending {
                op,
                countdown: nth,
                err,
                torn_keep: None,
            });
        }

        /// Fail the `nth` upcoming write after landing only its first
        /// `keep` bytes (torn write, e.g. ENOSPC mid-frame); one-shot.
        pub fn inject_torn_write(&self, nth: usize, keep: usize, err: InjectedError) {
            self.state.lock().unwrap().pending.push(Pending {
                op: FaultOp::Write,
                countdown: nth,
                err,
                torn_keep: Some(keep),
            });
        }

        /// The crash-surviving image: every durable name with its
        /// durable content.
        pub fn durable_image(&self) -> Vec<(PathBuf, Vec<u8>)> {
            let st = self.state.lock().unwrap();
            st.durable_names
                .iter()
                .map(|(p, &i)| (p.clone(), st.inodes[i].durable.clone()))
                .collect()
        }

        /// Write the durable image into a real directory (flattened by
        /// file name — the store keeps everything in one directory), so
        /// recovery can run against it with [`StdFs`].
        pub fn materialize_durable(&self, target: &Path) -> io::Result<()> {
            std::fs::create_dir_all(target)?;
            for (path, bytes) in self.durable_image() {
                let name = path
                    .file_name()
                    .ok_or_else(|| io::Error::other("unnamed durable file"))?;
                std::fs::write(target.join(name), bytes)?;
            }
            Ok(())
        }

        fn gate(&self, op: FaultOp) -> io::Result<()> {
            self.state
                .lock()
                .unwrap()
                .gate(op)
                .map_err(|(e, _torn)| e)
        }
    }

    impl VfsFile for FaultyFile {
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            let mut st = self.state.lock().unwrap();
            match st.gate(FaultOp::Write) {
                Ok(()) => {
                    st.inodes[self.inode].current.extend_from_slice(buf);
                    Ok(())
                }
                Err((e, torn)) => {
                    if let Some(keep) = torn {
                        let keep = keep.min(buf.len());
                        st.inodes[self.inode]
                            .current
                            .extend_from_slice(&buf[..keep]);
                    }
                    Err(e)
                }
            }
        }
        fn sync_data(&mut self) -> io::Result<()> {
            let mut st = self.state.lock().unwrap();
            st.gate(FaultOp::Sync).map_err(|(e, _)| e)?;
            let durable = st.inodes[self.inode].current.clone();
            st.inodes[self.inode].durable = durable;
            Ok(())
        }
    }

    impl Vfs for FaultyFs {
        type File = FaultyFile;

        fn create_new(&self, path: &Path) -> io::Result<Self::File> {
            let mut st = self.state.lock().unwrap();
            st.gate(FaultOp::Create).map_err(|(e, _)| e)?;
            if st.names.contains_key(path) {
                return Err(io::ErrorKind::AlreadyExists.into());
            }
            st.inodes.push(Inode::default());
            let inode = st.inodes.len() - 1;
            st.names.insert(path.to_path_buf(), inode);
            Ok(FaultyFile {
                state: Arc::clone(&self.state),
                inode,
            })
        }
        fn create(&self, path: &Path) -> io::Result<Self::File> {
            let mut st = self.state.lock().unwrap();
            st.gate(FaultOp::Create).map_err(|(e, _)| e)?;
            let inode = match st.names.get(path) {
                Some(&i) => {
                    st.inodes[i].current.clear();
                    i
                }
                None => {
                    st.inodes.push(Inode::default());
                    let i = st.inodes.len() - 1;
                    st.names.insert(path.to_path_buf(), i);
                    i
                }
            };
            Ok(FaultyFile {
                state: Arc::clone(&self.state),
                inode,
            })
        }
        fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Self::File> {
            let mut st = self.state.lock().unwrap();
            st.gate(FaultOp::Open).map_err(|(e, _)| e)?;
            let inode = *st
                .names
                .get(path)
                .ok_or(io::Error::from(io::ErrorKind::NotFound))?;
            st.inodes[inode].current.truncate(truncate_to as usize);
            Ok(FaultyFile {
                state: Arc::clone(&self.state),
                inode,
            })
        }
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            let st = self.state.lock().unwrap();
            st.names
                .get(path)
                .map(|&i| st.inodes[i].current.clone())
                .ok_or_else(|| io::ErrorKind::NotFound.into())
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.gate(FaultOp::Rename)?;
            let mut st = self.state.lock().unwrap();
            let inode = st
                .names
                .remove(from)
                .ok_or(io::Error::from(io::ErrorKind::NotFound))?;
            st.names.insert(to.to_path_buf(), inode);
            Ok(())
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.gate(FaultOp::Remove)?;
            let mut st = self.state.lock().unwrap();
            st.names
                .remove(path)
                .map(|_| ())
                .ok_or_else(|| io::ErrorKind::NotFound.into())
        }
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            self.state.lock().unwrap().dirs.insert(path.to_path_buf());
            Ok(())
        }
        fn is_dir(&self, path: &Path) -> bool {
            self.state.lock().unwrap().dirs.contains(path)
        }
        fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
            let st = self.state.lock().unwrap();
            if !st.dirs.contains(dir) {
                return Err(io::ErrorKind::NotFound.into());
            }
            Ok(st
                .names
                .keys()
                .filter(|p| p.parent() == Some(dir))
                .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
                .map(str::to_owned)
                .collect())
        }
        fn file_len(&self, path: &Path) -> io::Result<u64> {
            let st = self.state.lock().unwrap();
            st.names
                .get(path)
                .map(|&i| st.inodes[i].current.len() as u64)
                .ok_or_else(|| io::ErrorKind::NotFound.into())
        }
        fn sync_dir(&self, dir: &Path) -> io::Result<()> {
            self.gate(FaultOp::SyncDir)?;
            let mut st = self.state.lock().unwrap();
            let _ = dir; // one flat directory: persist the whole name set
            st.durable_names = st.names.clone();
            Ok(())
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
pub use faulty::{FaultyFile, FaultyFs};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        PathBuf::from("/vdir")
    }

    #[test]
    fn unsynced_data_and_names_die_in_a_crash() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let a = dir().join("a");
        let mut f = fs.create_new(&a).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        fs.sync_dir(&dir()).unwrap();
        // More data written but never synced, and a second file whose
        // name was never made durable.
        f.write_all(b" world").unwrap();
        let b = dir().join("b");
        let mut g = fs.create_new(&b).unwrap();
        g.write_all(b"gone").unwrap();
        g.sync_data().unwrap(); // data durable, name is not

        let image: std::collections::BTreeMap<_, _> =
            fs.durable_image().into_iter().collect();
        assert_eq!(image.len(), 1);
        assert_eq!(image[&a], b"hello".to_vec());
        // The live view still sees everything.
        assert_eq!(fs.read(&a).unwrap(), b"hello world");
        assert_eq!(fs.read(&b).unwrap(), b"gone");
    }

    #[test]
    fn crash_point_fails_everything_from_there_on() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let a = dir().join("a");
        {
            let mut f = fs.create_new(&a).unwrap();
            f.write_all(b"x").unwrap();
            f.sync_data().unwrap();
            fs.sync_dir(&dir()).unwrap();
        }
        let n = fs.ops();
        assert_eq!(n, 4); // create, write, sync, sync_dir
        fs.set_crash_point(n);
        let b = dir().join("b");
        assert!(fs.create_new(&b).is_err());
        assert!(fs.rename(&a, &b).is_err());
        assert!(fs.sync_dir(&dir()).is_err());
        // Reads still serve the (doomed) live view; durable image is
        // untouched by the failed ops.
        assert_eq!(fs.read(&a).unwrap(), b"x");
        assert_eq!(fs.durable_image().len(), 1);
    }

    #[test]
    fn torn_crash_write_lands_a_prefix() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let a = dir().join("a");
        let mut f = fs.create_new(&a).unwrap();
        f.write_all(b"head-").unwrap();
        fs.set_torn_crash_point(fs.ops(), 3);
        assert!(f.write_all(b"tail").is_err());
        assert_eq!(fs.read(&a).unwrap(), b"head-tai".to_vec());
        assert!(f.write_all(b"more").is_err(), "still crashed");
    }

    #[test]
    fn injected_errors_hit_the_nth_op_and_are_one_shot() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let a = dir().join("a");
        let mut f = fs.create_new(&a).unwrap();
        fs.inject(FaultOp::Sync, 1, InjectedError::Eio);
        f.sync_data().unwrap(); // nth=1: first sync passes
        let err = f.sync_data().unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        f.sync_data().unwrap(); // one-shot: consumed

        fs.inject(FaultOp::Create, 0, InjectedError::Enospc);
        let err = fs.create_new(&dir().join("b")).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(fs.read(&dir().join("b")).is_err(), "failed create has no effect");
    }

    #[test]
    fn retry_recovers_from_transient_interruptions_only() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&dir()).unwrap();
        fs.inject(FaultOp::Create, 0, InjectedError::Interrupted);
        let before = grepair_obs::counter("store.retry").get();
        let got = with_retry("test.create", || fs.create_new(&dir().join("a")));
        assert!(got.is_ok(), "transient error must be retried away");
        assert!(grepair_obs::counter("store.retry").get() > before);
        // Hard errors are not retried.
        fs.inject(FaultOp::Create, 0, InjectedError::Eio);
        assert!(with_retry("test.create", || fs.create_new(&dir().join("b"))).is_err());
    }

    #[test]
    fn materialize_round_trips_through_a_real_directory() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let mut f = fs.create_new(&dir().join("data.bin")).unwrap();
        f.write_all(&[1, 2, 3]).unwrap();
        f.sync_data().unwrap();
        fs.sync_dir(&dir()).unwrap();
        let target = std::env::temp_dir().join(format!(
            "grepair-vfs-mat-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&target);
        fs.materialize_durable(&target).unwrap();
        assert_eq!(std::fs::read(target.join("data.bin")).unwrap(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&target).ok();
    }
}
