//! Binary snapshot files.
//!
//! A snapshot named `snap-<seq:016x>.snap` captures the exact slot state
//! of the graph ([`SlotDump`]) after applying every log record up to and
//! including sequence `seq`. Layout:
//!
//! ```text
//! magic "GRSNAP1\n" · version u32 · seq u64 · payload_len u64 · crc u32 · payload
//! ```
//!
//! The CRC-32 covers the payload (the encoded dump). Snapshots are
//! written to a temp file and atomically renamed into place, so a crash
//! mid-snapshot leaves at worst a stray `*.tmp` — never a half snapshot
//! under a valid name. Readers treat any validation failure as
//! [`StoreError::Corrupt`]; recovery falls back to the next older
//! snapshot (or genesis) and replays a longer log suffix instead.

use crate::codec::{crc32, ByteReader, ByteWriter, DecodeError};
use crate::error::{Result, StoreError};
use crate::record::{decode_value, encode_value};
use crate::vfs::{with_retry, StdFs, Vfs, VfsFile};
use grepair_graph::{EdgeDoc, NodeDoc, SlotDump};
use std::path::{Path, PathBuf};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GRSNAP1\n";
/// On-disk snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File name of the snapshot taken at log sequence `seq`.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:016x}.snap")
}

/// Parse a snapshot file name back to its sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode_dump(dump: &SlotDump) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(dump.version);
    w.u32(dump.node_slots);
    w.u32(dump.edge_slots);
    w.u32(dump.doc.nodes.len() as u32);
    for n in &dump.doc.nodes {
        w.u32(n.id);
        w.str(&n.label);
        w.u32(n.attrs.len() as u32);
        for (k, v) in &n.attrs {
            w.str(k);
            encode_value(&mut w, v);
        }
    }
    w.u32(dump.doc.edges.len() as u32);
    for (e, id) in dump.doc.edges.iter().zip(&dump.edge_ids) {
        w.u32(*id);
        w.u32(e.src);
        w.u32(e.dst);
        w.str(&e.label);
    }
    w.u32(dump.free_nodes.len() as u32);
    for f in &dump.free_nodes {
        w.u32(*f);
    }
    w.u32(dump.free_edges.len() as u32);
    for f in &dump.free_edges {
        w.u32(*f);
    }
    w.into_bytes()
}

fn decode_dump(bytes: &[u8]) -> Result<SlotDump, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let mut dump = SlotDump {
        version: r.u64()?,
        node_slots: r.u32()?,
        edge_slots: r.u32()?,
        ..SlotDump::default()
    };
    let n_nodes = r.u32()? as usize;
    if n_nodes > dump.node_slots as usize {
        return Err(DecodeError(format!(
            "{n_nodes} nodes exceed {} slots",
            dump.node_slots
        )));
    }
    for _ in 0..n_nodes {
        let id = r.u32()?;
        let label = r.str()?;
        let n_attrs = r.u32()? as usize;
        if n_attrs > r.remaining() {
            return Err(DecodeError(format!("attr count {n_attrs} exceeds payload")));
        }
        let mut attrs = std::collections::BTreeMap::new();
        for _ in 0..n_attrs {
            let k = r.str()?;
            let v = decode_value(&mut r)?;
            attrs.insert(k, v);
        }
        dump.doc.nodes.push(NodeDoc { id, label, attrs });
    }
    let n_edges = r.u32()? as usize;
    if n_edges > dump.edge_slots as usize {
        return Err(DecodeError(format!(
            "{n_edges} edges exceed {} slots",
            dump.edge_slots
        )));
    }
    for _ in 0..n_edges {
        dump.edge_ids.push(r.u32()?);
        dump.doc.edges.push(EdgeDoc {
            src: r.u32()?,
            dst: r.u32()?,
            label: r.str()?,
        });
    }
    let n_free = r.u32()? as usize;
    if n_free > dump.node_slots as usize {
        return Err(DecodeError("free-node list exceeds slot count".into()));
    }
    for _ in 0..n_free {
        dump.free_nodes.push(r.u32()?);
    }
    let n_free = r.u32()? as usize;
    if n_free > dump.edge_slots as usize {
        return Err(DecodeError("free-edge list exceeds slot count".into()));
    }
    for _ in 0..n_free {
        dump.free_edges.push(r.u32()?);
    }
    if r.remaining() != 0 {
        return Err(DecodeError(format!(
            "{} trailing bytes after dump",
            r.remaining()
        )));
    }
    Ok(dump)
}

/// Write a snapshot of `dump` at sequence `seq` into `dir`, atomically
/// (temp file + rename + durable directory entry).
pub fn write_snapshot(dir: &Path, seq: u64, dump: &SlotDump) -> Result<PathBuf> {
    write_snapshot_in(&StdFs, dir, seq, dump)
}

/// [`write_snapshot`] against an explicit backend.
pub fn write_snapshot_in<V: Vfs>(
    vfs: &V,
    dir: &Path,
    seq: u64,
    dump: &SlotDump,
) -> Result<PathBuf> {
    let payload = encode_dump(dump);
    let mut bytes = Vec::with_capacity(payload.len() + 32);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let final_path = dir.join(snapshot_file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(seq)));
    {
        let mut f = with_retry("snapshot.create", || vfs.create(&tmp_path))?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    with_retry("snapshot.rename", || vfs.rename(&tmp_path, &final_path))?;
    // Make the rename durable. This must propagate: the caller is about
    // to retire the segments this snapshot replaces, and a crash that
    // undoes an unsynced rename after those removals land would leave
    // recovery with neither the snapshot nor the log that produced it.
    vfs.sync_dir(dir)?;
    Ok(final_path)
}

/// Read and fully validate a snapshot file; returns `(seq, dump)`.
pub fn read_snapshot(path: &Path) -> Result<(u64, SlotDump)> {
    read_snapshot_in(&StdFs, path)
}

/// [`read_snapshot`] against an explicit backend.
pub fn read_snapshot_in<V: Vfs>(vfs: &V, path: &Path) -> Result<(u64, SlotDump)> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let bytes = with_retry("snapshot.read", || vfs.read(path))?;
    if bytes.len() < 32 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
    if bytes.len() - 32 != payload_len {
        return Err(corrupt(format!(
            "payload length {payload_len} disagrees with file size {}",
            bytes.len()
        )));
    }
    let payload = &bytes[32..];
    if crc32(payload) != crc {
        return Err(corrupt("snapshot checksum mismatch".into()));
    }
    let dump = decode_dump(payload).map_err(|e| corrupt(e.to_string()))?;
    Ok((seq, dump))
}

/// Sorted `(seq, path)` list of the snapshot files in `dir`, ascending.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    list_snapshots_in(&StdFs, dir)
}

/// [`list_snapshots`] against an explicit backend.
pub fn list_snapshots_in<V: Vfs>(vfs: &V, dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for name in vfs.list_dir(dir)? {
        if let Some(seq) = parse_snapshot_name(&name) {
            out.push((seq, dir.join(name)));
        }
    }
    out.sort_by_key(|(s, _)| *s);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_graph::{Graph, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_dump() -> SlotDump {
        let mut g = Graph::new();
        let a = g.add_node_named("Person");
        let b = g.add_node_named("City in space");
        let c = g.add_node_named("Person");
        let k = g.attr_key("name");
        g.set_attr(a, k, Value::from("Ann")).unwrap();
        g.add_edge_named(a, b, "livesIn").unwrap();
        let e = g.add_edge_named(c, b, "livesIn").unwrap();
        g.remove_edge(e).unwrap();
        g.remove_node(c).unwrap();
        g.dump_slots()
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let dir = tmpdir("rt");
        let dump = sample_dump();
        let path = write_snapshot(&dir, 42, &dump).unwrap();
        assert_eq!(path.file_name().unwrap().to_str(), Some("snap-000000000000002a.snap"));
        let (seq, back) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(back, dump);
        // And the dump restores into an identical graph.
        let g = Graph::restore_slots(&back).unwrap();
        assert_eq!(g.dump_slots(), dump);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_and_any_bitflip_is_rejected() {
        let dir = tmpdir("fuzz");
        let dump = sample_dump();
        let path = write_snapshot(&dir, 1, &dump).unwrap();
        let full = std::fs::read(&path).unwrap();
        let p = dir.join("probe.snap");
        // Every truncation fails closed.
        for cut in 0..full.len() {
            std::fs::write(&p, &full[..cut]).unwrap();
            assert!(read_snapshot(&p).is_err(), "cut at {cut}");
        }
        // A sample of single-bit flips across the payload fails closed.
        for target in (32..full.len()).step_by(7) {
            let mut bytes = full.clone();
            bytes[target] ^= 0x10;
            std::fs::write(&p, &bytes).unwrap();
            assert!(read_snapshot(&p).is_err(), "flip at {target}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn listing_skips_foreign_files() {
        let dir = tmpdir("list");
        write_snapshot(&dir, 5, &SlotDump::default()).unwrap();
        write_snapshot(&dir, 2, &SlotDump::default()).unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        std::fs::write(dir.join("snap-zz.snap"), "x").unwrap();
        let seqs: Vec<u64> = list_snapshots(&dir).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![2, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dump_round_trips() {
        let dir = tmpdir("empty");
        let path = write_snapshot(&dir, 0, &SlotDump::default()).unwrap();
        let (seq, dump) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(dump, SlotDump::default());
        std::fs::remove_dir_all(&dir).ok();
    }
}
