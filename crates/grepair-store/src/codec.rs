//! Little-endian binary encoding primitives and the CRC-32 used to
//! checksum every record and snapshot payload.
//!
//! The store vendors its own CRC-32 (IEEE 802.3 / zlib polynomial,
//! reflected, table-driven) because the build environment has no
//! registry access; the table is computed at compile time.

/// CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — compatible with zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source. Every accessor returns an
/// error instead of panicking — decode inputs come straight from disk.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decode failure: truncated input or malformed content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a raw byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`, little-endian.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DecodeError(format!("invalid utf-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard zlib/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.str("héllo wörld");
        w.str("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo wörld");
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = ByteWriter::new();
        w.str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail");
        }
        // A string length pointing past the end fails cleanly.
        let mut w = ByteWriter::new();
        w.u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(ByteReader::new(&bytes).str().is_err());
    }
}
