//! The journaled mutation vocabulary and its binary codec.
//!
//! A [`Mutation`] mirrors the [`Graph`] mutation API one-to-one (the
//! paper's seven repair operations plus attribute removal), carrying
//! labels and attribute keys **as strings** — interner numbering is
//! process-local — and element ids as raw slot numbers. Insertions also
//! record the id they allocated at write time, so replay can verify the
//! log is still deterministic ([`StoreError::ReplayDivergence`]
//! otherwise) instead of silently rebuilding a different graph.
//!
//! Replay calls exactly the live-path method sequence (`AddNode` =
//! `add_node` + one `set_attr` per attribute, `MergeNodes` =
//! `merge_nodes`, …), which — combined with the graph's canonical
//! incident-edge ordering — makes slot allocation a pure function of
//! the op sequence.

use crate::codec::{ByteReader, ByteWriter, DecodeError};
use crate::error::{Result, StoreError};
use grepair_core::AppliedOp;
use grepair_graph::{EdgeId, Graph, NodeId, Value};

/// One journaled graph mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// A node was created (id recorded for replay verification), then
    /// its attributes set in order.
    AddNode {
        /// Slot the insertion allocated.
        node: NodeId,
        /// Node label.
        label: String,
        /// Attributes set at creation, in application order.
        attrs: Vec<(String, Value)>,
    },
    /// A node (and its incident edges) was deleted.
    RemoveNode {
        /// The deleted node.
        node: NodeId,
    },
    /// An edge was created.
    AddEdge {
        /// Slot the insertion allocated.
        edge: EdgeId,
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
        /// Relation label.
        label: String,
    },
    /// An edge was deleted.
    RemoveEdge {
        /// The deleted edge.
        edge: EdgeId,
    },
    /// A node was relabelled.
    SetNodeLabel {
        /// The node.
        node: NodeId,
        /// New label.
        label: String,
    },
    /// An edge was relabelled.
    SetEdgeLabel {
        /// The edge.
        edge: EdgeId,
        /// New label.
        label: String,
    },
    /// An attribute was set (created or overwritten).
    SetAttr {
        /// The node.
        node: NodeId,
        /// Attribute key.
        key: String,
        /// New value.
        value: Value,
    },
    /// An attribute was removed.
    RemoveAttr {
        /// The node.
        node: NodeId,
        /// Attribute key.
        key: String,
    },
    /// Two nodes were merged.
    MergeNodes {
        /// Surviving node.
        keep: NodeId,
        /// Absorbed node.
        merged: NodeId,
        /// Whether parallel duplicates were dropped.
        dedup_parallel: bool,
    },
}

const OP_ADD_NODE: u8 = 1;
const OP_REMOVE_NODE: u8 = 2;
const OP_ADD_EDGE: u8 = 3;
const OP_REMOVE_EDGE: u8 = 4;
const OP_SET_NODE_LABEL: u8 = 5;
const OP_SET_EDGE_LABEL: u8 = 6;
const OP_SET_ATTR: u8 = 7;
const OP_REMOVE_ATTR: u8 = 8;
const OP_MERGE_NODES: u8 = 9;

/// Encode a [`Value`] (tag byte + payload).
pub fn encode_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Str(s) => {
            w.u8(0);
            w.str(s);
        }
        Value::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(2);
            w.u64(f.to_bits());
        }
        Value::Bool(b) => {
            w.u8(3);
            w.u8(*b as u8);
        }
    }
}

/// Decode a [`Value`].
pub fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        0 => Ok(Value::Str(r.str()?)),
        1 => Ok(Value::Int(r.i64()?)),
        2 => Ok(Value::Float(f64::from_bits(r.u64()?))),
        3 => Ok(Value::Bool(r.u8()? != 0)),
        t => Err(DecodeError(format!("unknown value tag {t}"))),
    }
}

impl Mutation {
    /// Append the binary form to `w`.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            Mutation::AddNode { node, label, attrs } => {
                w.u8(OP_ADD_NODE);
                w.u32(node.0);
                w.str(label);
                w.u32(attrs.len() as u32);
                for (k, v) in attrs {
                    w.str(k);
                    encode_value(w, v);
                }
            }
            Mutation::RemoveNode { node } => {
                w.u8(OP_REMOVE_NODE);
                w.u32(node.0);
            }
            Mutation::AddEdge {
                edge,
                src,
                dst,
                label,
            } => {
                w.u8(OP_ADD_EDGE);
                w.u32(edge.0);
                w.u32(src.0);
                w.u32(dst.0);
                w.str(label);
            }
            Mutation::RemoveEdge { edge } => {
                w.u8(OP_REMOVE_EDGE);
                w.u32(edge.0);
            }
            Mutation::SetNodeLabel { node, label } => {
                w.u8(OP_SET_NODE_LABEL);
                w.u32(node.0);
                w.str(label);
            }
            Mutation::SetEdgeLabel { edge, label } => {
                w.u8(OP_SET_EDGE_LABEL);
                w.u32(edge.0);
                w.str(label);
            }
            Mutation::SetAttr { node, key, value } => {
                w.u8(OP_SET_ATTR);
                w.u32(node.0);
                w.str(key);
                encode_value(w, value);
            }
            Mutation::RemoveAttr { node, key } => {
                w.u8(OP_REMOVE_ATTR);
                w.u32(node.0);
                w.str(key);
            }
            Mutation::MergeNodes {
                keep,
                merged,
                dedup_parallel,
            } => {
                w.u8(OP_MERGE_NODES);
                w.u32(keep.0);
                w.u32(merged.0);
                w.u8(*dedup_parallel as u8);
            }
        }
    }

    /// Decode one mutation from `r`.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            OP_ADD_NODE => {
                let node = NodeId(r.u32()?);
                let label = r.str()?;
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(DecodeError(format!("attr count {n} exceeds payload")));
                }
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = r.str()?;
                    let v = decode_value(r)?;
                    attrs.push((k, v));
                }
                Ok(Mutation::AddNode { node, label, attrs })
            }
            OP_REMOVE_NODE => Ok(Mutation::RemoveNode {
                node: NodeId(r.u32()?),
            }),
            OP_ADD_EDGE => Ok(Mutation::AddEdge {
                edge: EdgeId(r.u32()?),
                src: NodeId(r.u32()?),
                dst: NodeId(r.u32()?),
                label: r.str()?,
            }),
            OP_REMOVE_EDGE => Ok(Mutation::RemoveEdge {
                edge: EdgeId(r.u32()?),
            }),
            OP_SET_NODE_LABEL => Ok(Mutation::SetNodeLabel {
                node: NodeId(r.u32()?),
                label: r.str()?,
            }),
            OP_SET_EDGE_LABEL => Ok(Mutation::SetEdgeLabel {
                edge: EdgeId(r.u32()?),
                label: r.str()?,
            }),
            OP_SET_ATTR => Ok(Mutation::SetAttr {
                node: NodeId(r.u32()?),
                key: r.str()?,
                value: decode_value(r)?,
            }),
            OP_REMOVE_ATTR => Ok(Mutation::RemoveAttr {
                node: NodeId(r.u32()?),
                key: r.str()?,
            }),
            OP_MERGE_NODES => Ok(Mutation::MergeNodes {
                keep: NodeId(r.u32()?),
                merged: NodeId(r.u32()?),
                dedup_parallel: r.u8()? != 0,
            }),
            t => Err(DecodeError(format!("unknown mutation opcode {t}"))),
        }
    }

    /// The journal form of an engine-applied repair operation.
    ///
    /// [`AppliedOp`]s record what [`grepair_core::apply_rule`] actually
    /// did, in the exact call order, so the mapping is mechanical.
    pub fn from_applied(op: &AppliedOp) -> Mutation {
        match op {
            AppliedOp::InsertNode { node, label, attrs } => Mutation::AddNode {
                node: *node,
                label: label.clone(),
                attrs: attrs.clone(),
            },
            AppliedOp::InsertEdge {
                edge,
                src,
                dst,
                label,
            } => Mutation::AddEdge {
                edge: *edge,
                src: *src,
                dst: *dst,
                label: label.clone(),
            },
            AppliedOp::DeleteNode { node, .. } => Mutation::RemoveNode { node: *node },
            AppliedOp::DeleteEdge { edge, .. } => Mutation::RemoveEdge { edge: *edge },
            AppliedOp::RelabelNode { node, to, .. } => Mutation::SetNodeLabel {
                node: *node,
                label: to.clone(),
            },
            AppliedOp::RelabelEdge { edge, to, .. } => Mutation::SetEdgeLabel {
                edge: *edge,
                label: to.clone(),
            },
            AppliedOp::SetAttr {
                node, key, value, ..
            } => Mutation::SetAttr {
                node: *node,
                key: key.clone(),
                value: value.clone(),
            },
            AppliedOp::RemoveAttr { node, key, .. } => Mutation::RemoveAttr {
                node: *node,
                key: key.clone(),
            },
            // apply_rule always merges with parallel-dedup on.
            AppliedOp::Merge { keep, merged, .. } => Mutation::MergeNodes {
                keep: *keep,
                merged: *merged,
                dedup_parallel: true,
            },
        }
    }

    /// Re-apply this mutation to `g` during recovery.
    ///
    /// Graph-level failures and id divergence become errors (`seq` is
    /// interpolated into the message by the caller); they indicate a
    /// damaged log, never a normal condition — the live path validated
    /// every op before journaling it.
    pub fn apply(&self, g: &mut Graph) -> Result<()> {
        let diverged = |detail: String| {
            Err(StoreError::ReplayDivergence { seq: 0, detail })
        };
        match self {
            Mutation::AddNode { node, label, attrs } => {
                let l = g.label(label);
                let got = g.add_node(l);
                if got != *node {
                    return diverged(format!("AddNode allocated {got}, journal says {node}"));
                }
                for (k, v) in attrs {
                    let kk = g.attr_key(k);
                    g.set_attr(got, kk, v.clone())?;
                }
                Ok(())
            }
            Mutation::RemoveNode { node } => {
                g.remove_node(*node)?;
                Ok(())
            }
            Mutation::AddEdge {
                edge,
                src,
                dst,
                label,
            } => {
                let l = g.label(label);
                let got = g.add_edge(*src, *dst, l)?;
                if got != *edge {
                    return diverged(format!("AddEdge allocated {got}, journal says {edge}"));
                }
                Ok(())
            }
            Mutation::RemoveEdge { edge } => {
                g.remove_edge(*edge)?;
                Ok(())
            }
            Mutation::SetNodeLabel { node, label } => {
                let l = g.label(label);
                g.set_node_label(*node, l)?;
                Ok(())
            }
            Mutation::SetEdgeLabel { edge, label } => {
                let l = g.label(label);
                g.set_edge_label(*edge, l)?;
                Ok(())
            }
            Mutation::SetAttr { node, key, value } => {
                let k = g.attr_key(key);
                g.set_attr(*node, k, value.clone())?;
                Ok(())
            }
            Mutation::RemoveAttr { node, key } => {
                let k = g.attr_key(key);
                g.remove_attr(*node, k)?;
                Ok(())
            }
            Mutation::MergeNodes {
                keep,
                merged,
                dedup_parallel,
            } => {
                g.merge_nodes(*keep, *merged, *dedup_parallel)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Mutation> {
        vec![
            Mutation::AddNode {
                node: NodeId(3),
                label: "Person".into(),
                attrs: vec![
                    ("name".into(), Value::from("Ann Lee")),
                    ("age".into(), Value::Int(-7)),
                    ("score".into(), Value::Float(f64::NAN)),
                    ("ok".into(), Value::Bool(true)),
                ],
            },
            Mutation::RemoveNode { node: NodeId(0) },
            Mutation::AddEdge {
                edge: EdgeId(9),
                src: NodeId(1),
                dst: NodeId(2),
                label: "knows".into(),
            },
            Mutation::RemoveEdge { edge: EdgeId(4) },
            Mutation::SetNodeLabel {
                node: NodeId(5),
                label: "Robot".into(),
            },
            Mutation::SetEdgeLabel {
                edge: EdgeId(6),
                label: "hates".into(),
            },
            Mutation::SetAttr {
                node: NodeId(7),
                key: "bio".into(),
                value: Value::from("line1\nline2"),
            },
            Mutation::RemoveAttr {
                node: NodeId(8),
                key: "tmp".into(),
            },
            Mutation::MergeNodes {
                keep: NodeId(1),
                merged: NodeId(2),
                dedup_parallel: true,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for m in samples() {
            let mut w = ByteWriter::new();
            m.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = Mutation::decode(&mut r).unwrap();
            assert_eq!(back, m);
            assert_eq!(r.remaining(), 0, "no trailing bytes for {m:?}");
        }
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        for m in samples() {
            let mut w = ByteWriter::new();
            m.encode(&mut w);
            let bytes = w.into_bytes();
            for cut in 0..bytes.len() {
                let mut r = ByteReader::new(&bytes[..cut]);
                assert!(
                    Mutation::decode(&mut r).is_err(),
                    "{m:?} truncated at {cut} must fail to decode"
                );
            }
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut r = ByteReader::new(&[0xAB, 0, 0, 0, 0]);
        assert!(Mutation::decode(&mut r).is_err());
    }

    #[test]
    fn replay_verifies_allocated_ids() {
        let mut g = Graph::new();
        let m = Mutation::AddNode {
            node: NodeId(5), // wrong: a fresh graph allocates n0
            label: "P".into(),
            attrs: vec![],
        };
        let err = m.apply(&mut g).unwrap_err();
        assert!(matches!(err, StoreError::ReplayDivergence { .. }), "{err}");
    }

    #[test]
    fn applied_op_mapping_is_replayable() {
        // Drive the engine-facing mapping through a real apply cycle:
        // every AppliedOp converted and replayed on a second graph must
        // reproduce the first graph's slots.
        let mut live = Graph::new();
        let p = live.add_node_named("Person");
        let q = live.add_node_named("Person");
        live.add_edge_named(p, q, "knows").unwrap();
        let mut replayed = Graph::restore_slots(&live.dump_slots()).unwrap();

        let k = live.attr_key("ssn");
        live.set_attr(p, k, Value::Int(1)).unwrap();
        live.set_attr(q, k, Value::Int(1)).unwrap();
        let outcome = live.merge_nodes(p, q, true).unwrap();
        let ops = vec![
            AppliedOp::SetAttr {
                node: p,
                key: "ssn".into(),
                value: Value::Int(1),
                old: None,
            },
            AppliedOp::SetAttr {
                node: q,
                key: "ssn".into(),
                value: Value::Int(1),
                old: None,
            },
            AppliedOp::Merge {
                keep: p,
                merged: q,
                rewired: outcome.rewired.len(),
                dropped: outcome.dropped.len(),
            },
        ];
        for op in &ops {
            Mutation::from_applied(op).apply(&mut replayed).unwrap();
        }
        assert_eq!(replayed.dump_slots(), live.dump_slots());
    }
}
