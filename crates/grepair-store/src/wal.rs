//! Append-only, checksummed WAL segments.
//!
//! A store's log is a sequence of segment files named
//! `wal-<base_seq:016x>.seg`. Each segment starts with a fixed header
//! (magic, format version, base sequence number — which must agree with
//! the file name) followed by framed records:
//!
//! ```text
//! ┌─────────┬─────────┬────────────────────────────┐
//! │ len u32 │ crc u32 │ payload (len bytes)        │
//! └─────────┴─────────┴────────────────────────────┘
//! payload = seq u64 · Mutation (see `record`)
//! ```
//!
//! The CRC-32 covers the payload only; `len` is implicitly validated by
//! the CRC (a corrupt length either exceeds the file — torn — or
//! misframes the payload and fails the checksum). Reading stops at the
//! first frame that is incomplete or fails its checksum; the byte offset
//! of that frame is the segment's *valid length*. On the active (last)
//! segment this is the crash-torn tail and is truncated away on open;
//! anywhere else it is corruption and refuses recovery. A torn tail is
//! only accepted when nothing decodable follows it: if a valid frame
//! exists anywhere past the first invalid one, the damage is mid-log
//! (truncating would drop committed records) and reading fails closed
//! with [`StoreError::Corrupt`].

use crate::codec::{crc32, ByteReader, ByteWriter};
use crate::error::{Result, StoreError};
use crate::record::Mutation;
use crate::vfs::{with_retry, StdFs, Vfs, VfsFile};
use std::path::{Path, PathBuf};

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 8] = *b"GRWAL1\n\0";
/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed segment header size: magic + version + base_seq.
pub const SEGMENT_HEADER_LEN: u64 = 8 + 4 + 8;
/// Upper bound on a single record's payload, to keep a corrupt length
/// field from driving a giant allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// File name of the segment whose first record has sequence `base_seq`.
pub fn segment_file_name(base_seq: u64) -> String {
    format!("wal-{base_seq:016x}.seg")
}

/// Parse a segment file name back to its base sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Append handle on one segment file. Generic over the storage backend;
/// the default is the production passthrough [`StdFs`].
pub struct SegmentWriter<V: Vfs = StdFs> {
    file: V::File,
    path: PathBuf,
    base_seq: u64,
    len: u64,
}

impl SegmentWriter<StdFs> {
    /// Create a fresh segment (fails if the file exists).
    pub fn create(dir: &Path, base_seq: u64) -> Result<Self> {
        Self::create_in(&StdFs, dir, base_seq)
    }

    /// Reopen an existing segment for appending, first truncating it to
    /// `valid_len` (dropping a crash-torn tail, if any).
    pub fn open_end(path: &Path, base_seq: u64, valid_len: u64) -> Result<Self> {
        Self::open_end_in(&StdFs, path, base_seq, valid_len)
    }
}

impl<V: Vfs> SegmentWriter<V> {
    /// [`SegmentWriter::create`] against an explicit backend.
    pub fn create_in(vfs: &V, dir: &Path, base_seq: u64) -> Result<Self> {
        let path = dir.join(segment_file_name(base_seq));
        let mut file = with_retry("wal.create", || vfs.create_new(&path))?;
        let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&base_seq.to_le_bytes());
        file.write_all(&bytes)?;
        file.sync_data()?;
        // Persist the directory entry too: without this, a power cut can
        // erase the whole (acknowledged) segment on journaling file
        // systems — the file's data was synced but its name was not.
        // This is the commit path (every acknowledged record in this
        // segment depends on the name surviving), so the result
        // propagates as a hard error rather than being dropped.
        vfs.sync_dir(dir)?;
        Ok(Self {
            file,
            path,
            base_seq,
            len: SEGMENT_HEADER_LEN,
        })
    }

    /// [`SegmentWriter::open_end`] against an explicit backend.
    pub fn open_end_in(vfs: &V, path: &Path, base_seq: u64, valid_len: u64) -> Result<Self> {
        let file = with_retry("wal.open", || vfs.open_append(path, valid_len))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            base_seq,
            len: valid_len,
        })
    }

    /// Append one framed record; returns the frame size in bytes.
    ///
    /// A payload over [`MAX_RECORD_LEN`] is rejected *before* any bytes
    /// hit the file: the reader treats oversized lengths as torn, so an
    /// accepted-but-unreadable record would be silently truncated away
    /// (with everything after it) on the next recovery.
    pub fn append(&mut self, seq: u64, m: &Mutation) -> Result<u64> {
        let mut w = ByteWriter::new();
        w.u64(seq);
        m.encode(&mut w);
        let payload = w.into_bytes();
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "record payload of {} bytes exceeds the {MAX_RECORD_LEN}-byte limit",
                    payload.len()
                ),
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Flush to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Current file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.len == SEGMENT_HEADER_LEN
    }

    /// First sequence number this segment may hold.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One decoded record.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Log sequence number.
    pub seq: u64,
    /// The mutation.
    pub mutation: Mutation,
    /// On-disk frame size in bytes.
    pub frame_len: u64,
}

/// Everything recoverable from one segment file.
#[derive(Debug)]
pub struct SegmentContents {
    /// Base sequence from the header.
    pub base_seq: u64,
    /// Records in order, up to the first invalid frame.
    pub records: Vec<WalRecord>,
    /// Byte offset of the first invalid frame (file length if clean).
    pub valid_len: u64,
    /// Bytes past `valid_len` — the torn tail.
    pub torn_bytes: u64,
    /// Whether a complete, CRC-valid, decodable frame exists *past* the
    /// first invalid one. A genuine crash tears only the tail, so this
    /// marks mid-log damage (bad block, bit rot): truncating at
    /// `valid_len` would silently drop the committed records after it.
    pub mid_log_damage: bool,
}

impl SegmentContents {
    /// Whether the file ended with a torn (incomplete or checksum-failed)
    /// frame.
    pub fn is_torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Read a segment, stopping cleanly at the first invalid frame.
///
/// Returns [`StoreError::Corrupt`] only for header-level damage (bad
/// magic, unsupported version, base mismatch with the file name) or for
/// a CRC-*valid* record that fails to decode — both mean the file is not
/// what we wrote, not that a write was interrupted. A decode error for
/// `expected_base` of `None` skips the name cross-check.
pub fn read_segment(path: &Path, expected_base: Option<u64>) -> Result<SegmentContents> {
    read_segment_in(&StdFs, path, expected_base)
}

/// [`read_segment`] against an explicit backend.
pub fn read_segment_in<V: Vfs>(
    vfs: &V,
    path: &Path,
    expected_base: Option<u64>,
) -> Result<SegmentContents> {
    let bytes = with_retry("wal.read", || vfs.read(path))?;
    parse_segment(path, &bytes, expected_base, false)
}

/// Lenient variant for degraded reads and `fsck`: mid-log damage does
/// not fail — the records before the first invalid frame are returned
/// as the servable prefix. Header-level damage still fails (zero
/// records are decodable from a file we cannot identify).
pub fn read_segment_prefix_in<V: Vfs>(
    vfs: &V,
    path: &Path,
    expected_base: Option<u64>,
) -> Result<SegmentContents> {
    let bytes = with_retry("wal.read", || vfs.read(path))?;
    parse_segment(path, &bytes, expected_base, true)
}

fn parse_segment(
    path: &Path,
    bytes: &[u8],
    expected_base: Option<u64>,
    lenient: bool,
) -> Result<SegmentContents> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        // A crash can tear even the header of a freshly rotated segment;
        // that is a torn file with zero records, not corruption.
        return Ok(SegmentContents {
            base_seq: expected_base.unwrap_or(0),
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
            mid_log_damage: false,
        });
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(corrupt("bad segment magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let base_seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if let Some(expect) = expected_base {
        if expect != base_seq {
            return Err(corrupt(format!(
                "header base seq {base_seq} disagrees with file name ({expect})"
            )));
        }
    }

    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN as usize;
    loop {
        if bytes.len() - pos < 8 {
            break; // incomplete frame header: torn
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN || bytes.len() - pos - 8 < len as usize {
            break; // frame longer than the file: torn
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break; // checksum failure: torn
        }
        let mut r = ByteReader::new(payload);
        let seq = r
            .u64()
            .map_err(|e| corrupt(format!("checksummed record too short: {e}")))?;
        let mutation = Mutation::decode(&mut r)
            .map_err(|e| corrupt(format!("record seq {seq} undecodable: {e}")))?;
        if r.remaining() != 0 {
            return Err(corrupt(format!(
                "record seq {seq} has {} trailing payload bytes",
                r.remaining()
            )));
        }
        records.push(WalRecord {
            seq,
            mutation,
            frame_len: 8 + len as u64,
        });
        pos += 8 + len as usize;
    }
    // Torn-vs-corrupt: a crash tears the *tail* — nothing meaningful can
    // follow the partial frame. If a byte-complete, checksum-valid,
    // decodable frame exists anywhere past the first invalid one, the
    // damage is mid-log (bad block, bit rot) and committed records would
    // be silently dropped by truncation; fail closed instead. The
    // lenient path keeps the prefix but records the distinction so
    // `fsck` reaches the same verdict a strict open would.
    let mid_log_damage = pos < bytes.len() && contains_valid_frame(&bytes[pos + 1..]);
    if !lenient && mid_log_damage {
        return Err(corrupt(format!(
            "invalid frame at offset {pos} with valid frames after it (mid-segment corruption)"
        )));
    }
    Ok(SegmentContents {
        base_seq,
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        mid_log_damage,
    })
}

/// Whether any byte offset in `tail` starts a complete, CRC-valid,
/// decodable record frame. Linear scan — the region after a genuine
/// torn tail is at most one partial frame, so this is cheap in the
/// common case and only grows with actual mid-log damage.
fn contains_valid_frame(tail: &[u8]) -> bool {
    if tail.len() < 8 {
        return false;
    }
    for o in 0..tail.len() - 8 {
        let len = u32::from_le_bytes(tail[o..o + 4].try_into().unwrap()) as usize;
        if len > MAX_RECORD_LEN as usize || tail.len() - o - 8 < len {
            continue;
        }
        let crc = u32::from_le_bytes(tail[o + 4..o + 8].try_into().unwrap());
        let payload = &tail[o + 8..o + 8 + len];
        if crc32(payload) != crc {
            continue;
        }
        let mut r = ByteReader::new(payload);
        if r.u64().is_ok() && Mutation::decode(&mut r).is_ok() && r.remaining() == 0 {
            return true;
        }
    }
    false
}

/// Sorted `(base_seq, path)` list of the segment files in `dir`.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    list_segments_in(&StdFs, dir)
}

/// [`list_segments`] against an explicit backend.
pub fn list_segments_in<V: Vfs>(vfs: &V, dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for name in vfs.list_dir(dir)? {
        if let Some(base) = parse_segment_name(&name) {
            out.push((base, dir.join(name)));
        }
    }
    out.sort_by_key(|(b, _)| *b);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_graph::NodeId;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mutations(n: usize) -> Vec<Mutation> {
        (0..n)
            .map(|i| Mutation::AddNode {
                node: NodeId(i as u32),
                label: format!("L{i}"),
                attrs: vec![],
            })
            .collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = tmpdir("rt");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        for (i, m) in mutations(10).iter().enumerate() {
            w.append(1 + i as u64, m).unwrap();
        }
        w.sync().unwrap();
        let c = read_segment(w.path(), Some(1)).unwrap();
        assert_eq!(c.base_seq, 1);
        assert_eq!(c.records.len(), 10);
        assert!(!c.is_torn());
        assert_eq!(c.valid_len, w.len());
        assert_eq!(c.records[3].seq, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_yields_a_record_prefix() {
        let dir = tmpdir("trunc");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        let ms = mutations(6);
        let mut frame_ends = vec![SEGMENT_HEADER_LEN];
        for (i, m) in ms.iter().enumerate() {
            w.append(1 + i as u64, m).unwrap();
            frame_ends.push(w.len());
        }
        w.sync().unwrap();
        let full = std::fs::read(w.path()).unwrap();
        for cut in SEGMENT_HEADER_LEN as usize..=full.len() {
            let p = dir.join("cut.seg");
            std::fs::write(&p, &full[..cut]).unwrap();
            let c = read_segment(&p, Some(1)).unwrap();
            // Longest record prefix that fits entirely below the cut.
            let expect = frame_ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            assert_eq!(c.records.len(), expect, "cut at {cut}");
            assert_eq!(c.is_torn(), frame_ends[expect] != cut as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let dir = tmpdir("flip");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        for (i, m) in mutations(3).iter().enumerate() {
            w.append(1 + i as u64, m).unwrap();
        }
        let mut bytes = std::fs::read(w.path()).unwrap();
        // Flip one bit inside the LAST record's payload: nothing valid
        // follows, so this reads as a torn tail.
        let target = bytes.len() - 5;
        bytes[target] ^= 0x40;
        let p = dir.join("flipped.seg");
        std::fs::write(&p, &bytes).unwrap();
        let c = read_segment(&p, Some(1)).unwrap();
        assert!(c.is_torn());
        assert!(c.records.len() < 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_segment_corruption_fails_closed() {
        let dir = tmpdir("midflip");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        let mut frame_starts = Vec::new();
        for (i, m) in mutations(4).iter().enumerate() {
            frame_starts.push(w.len());
            w.append(1 + i as u64, m).unwrap();
        }
        let mut bytes = std::fs::read(w.path()).unwrap();
        // Damage the SECOND record's payload: valid committed frames
        // follow, so truncation would silently drop them — must refuse.
        let target = frame_starts[1] as usize + 10;
        bytes[target] ^= 0x01;
        let p = dir.join("midflipped.seg");
        std::fs::write(&p, &bytes).unwrap();
        let err = read_segment(&p, Some(1)).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { detail, .. } if detail.contains("mid-segment")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_damage_is_corrupt_not_torn() {
        let dir = tmpdir("hdr");
        let mut w = SegmentWriter::create(&dir, 7).unwrap();
        w.append(7, &mutations(1)[0]).unwrap();
        let mut bytes = std::fs::read(w.path()).unwrap();
        bytes[0] ^= 0xFF;
        let p = dir.join(segment_file_name(7));
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            read_segment(&p, Some(7)),
            Err(StoreError::Corrupt { .. })
        ));
        // Name/header base mismatch.
        let fresh = SegmentWriter::create(&dir, 9).unwrap();
        assert!(matches!(
            read_segment(fresh.path(), Some(10)),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sub_header_file_is_torn_with_no_records() {
        let dir = tmpdir("stub");
        let p = dir.join(segment_file_name(3));
        std::fs::write(&p, b"GRW").unwrap();
        let c = read_segment(&p, Some(3)).unwrap();
        assert!(c.records.is_empty());
        assert!(c.is_torn());
        assert_eq!(c.valid_len, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_end_truncates_torn_tail_and_appends() {
        let dir = tmpdir("reopen");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        for (i, m) in mutations(4).iter().enumerate() {
            w.append(1 + i as u64, m).unwrap();
        }
        let path = w.path().to_path_buf();
        drop(w);
        // Simulate a crash mid-append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x55; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let c = read_segment(&path, Some(1)).unwrap();
        assert!(c.is_torn());
        let mut w = SegmentWriter::open_end(&path, 1, c.valid_len).unwrap();
        w.append(5, &mutations(1)[0]).unwrap();
        w.sync().unwrap();
        let c = read_segment(&path, Some(1)).unwrap();
        assert!(!c.is_torn());
        assert_eq!(c.records.len(), 5);
        assert_eq!(c.records.last().unwrap().seq, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_name(&segment_file_name(0)), Some(0));
        assert_eq!(
            parse_segment_name(&segment_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_segment_name("wal-zz.seg"), None);
        assert_eq!(parse_segment_name("snap-0000000000000001.snap"), None);
    }
}
