//! Cross-process `LOCK` file with staleness detection.
//!
//! A writable store holds a `LOCK` file in its directory recording the
//! owning pid and the machine's boot id. A second open of the same
//! directory fails with [`StoreError::Locked`] while the holder is
//! alive; a lock left behind by a crash is detected as stale — the pid
//! no longer exists, or the boot id differs (same pid numbers recur
//! across reboots) — and stolen silently with a `store.lock_stale`
//! warn event.
//!
//! The lock file's content is written but never fsynced: it protects
//! *live* processes from each other, while crash-left locks are handled
//! by staleness, so durability buys nothing. Read-only opens
//! ([`crate::ReadOnlyStore`]) take no lock at all.
//!
//! On platforms without `/proc` the liveness probe cannot run; locks
//! are then never considered stale (fail safe: refuse to steal).

use crate::error::{Result, StoreError};
use crate::vfs::{Vfs, VfsFile};
use std::path::Path;

/// Name of the lock file inside a store directory.
pub const LOCK_FILE_NAME: &str = "LOCK";

/// What the `LOCK` file says about the store's writer, as reported by
/// [`crate::fsck`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockStatus {
    /// No lock file.
    Unlocked,
    /// Held by a process that looks alive on this boot.
    Held {
        /// The holder's pid.
        pid: u32,
    },
    /// Left behind by a dead process or a previous boot (`pid` is
    /// `None` when the file content was unreadable — e.g. the writing
    /// process crashed mid-write).
    Stale {
        /// The recorded pid, if parseable.
        pid: Option<u32>,
    },
}

impl std::fmt::Display for LockStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockStatus::Unlocked => write!(f, "unlocked"),
            LockStatus::Held { pid } => write!(f, "held by live pid {pid}"),
            LockStatus::Stale { pid: Some(pid) } => write!(f, "stale (dead pid {pid})"),
            LockStatus::Stale { pid: None } => write!(f, "stale (unreadable)"),
        }
    }
}

/// The current machine boot id, or `None` where unavailable.
fn boot_id() -> Option<String> {
    std::fs::read_to_string("/proc/sys/kernel/random/boot_id")
        .ok()
        .map(|s| s.trim().to_owned())
}

/// Whether `pid` is alive on this machine. `None` = cannot tell.
fn pid_alive(pid: u32) -> Option<bool> {
    if !Path::new("/proc").is_dir() {
        return None;
    }
    Some(Path::new(&format!("/proc/{pid}")).exists())
}

fn parse(content: &[u8]) -> Option<(u32, String)> {
    let text = std::str::from_utf8(content).ok()?;
    let mut pid = None;
    let mut boot = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("pid ") {
            pid = v.trim().parse::<u32>().ok();
        } else if let Some(v) = line.strip_prefix("boot ") {
            boot = Some(v.trim().to_owned());
        }
    }
    Some((pid?, boot?))
}

/// Classify the lock in `dir` without touching it.
pub(crate) fn status<V: Vfs>(vfs: &V, dir: &Path) -> LockStatus {
    let content = match vfs.read(&dir.join(LOCK_FILE_NAME)) {
        Ok(c) => c,
        Err(_) => return LockStatus::Unlocked,
    };
    let Some((pid, boot)) = parse(&content) else {
        // A torn LOCK write means the writer died before acknowledging
        // anything under this lock — stale by construction.
        return LockStatus::Stale { pid: None };
    };
    if let Some(current) = boot_id() {
        if current != boot {
            return LockStatus::Stale { pid: Some(pid) };
        }
    }
    match pid_alive(pid) {
        Some(false) => LockStatus::Stale { pid: Some(pid) },
        // Alive, or unknowable: refuse to steal.
        Some(true) | None => LockStatus::Held { pid },
    }
}

/// Take the lock for this process, stealing stale ones. Fails with
/// [`StoreError::Locked`] if a live holder exists.
pub(crate) fn acquire<V: Vfs>(vfs: &V, dir: &Path) -> Result<()> {
    let path = dir.join(LOCK_FILE_NAME);
    // Bounded: each loop either succeeds, returns Locked, or removes a
    // stale file; more than a couple of iterations means another
    // process is racing us for the same store — report it as locked.
    for _ in 0..4 {
        match vfs.create_new(&path) {
            Ok(mut f) => {
                let content = format!(
                    "pid {}\nboot {}\n",
                    std::process::id(),
                    boot_id().unwrap_or_else(|| "unknown".to_owned())
                );
                f.write_all(content.as_bytes())?;
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => match status(vfs, dir) {
                LockStatus::Held { pid } => {
                    return Err(StoreError::Locked { path, pid });
                }
                stale => {
                    grepair_obs::counter("store.fault").inc();
                    grepair_obs::event(
                        grepair_obs::Level::Warn,
                        "store.lock_stale",
                        format!("stealing {} lock at {}", stale, path.display()),
                    );
                    match vfs.remove_file(&path) {
                        Ok(()) => {}
                        // Lost a removal race; re-evaluate on next loop.
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            },
            Err(e) => return Err(e.into()),
        }
    }
    Err(StoreError::Locked { path, pid: 0 })
}

/// Drop the lock (best effort — a leftover is stale next time).
pub(crate) fn release<V: Vfs>(vfs: &V, dir: &Path) {
    let _ = vfs.remove_file(&dir.join(LOCK_FILE_NAME));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdFs;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-lock-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_then_status_then_release() {
        let dir = tmpdir("basic");
        assert_eq!(status(&StdFs, &dir), LockStatus::Unlocked);
        acquire(&StdFs, &dir).unwrap();
        assert_eq!(
            status(&StdFs, &dir),
            LockStatus::Held {
                pid: std::process::id()
            }
        );
        // A second acquire by "another process" (same pid, so it looks
        // alive) must refuse.
        assert!(matches!(
            acquire(&StdFs, &dir),
            Err(StoreError::Locked { pid, .. }) if pid == std::process::id()
        ));
        release(&StdFs, &dir);
        assert_eq!(status(&StdFs, &dir), LockStatus::Unlocked);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_pid_and_foreign_boot_are_stale_and_stolen() {
        let dir = tmpdir("stale");
        // Pid far above any default pid_max.
        std::fs::write(
            dir.join(LOCK_FILE_NAME),
            format!(
                "pid 999999999\nboot {}\n",
                boot_id().unwrap_or_else(|| "unknown".into())
            ),
        )
        .unwrap();
        if pid_alive(999999999) == Some(false) {
            assert_eq!(status(&StdFs, &dir), LockStatus::Stale { pid: Some(999999999) });
            acquire(&StdFs, &dir).unwrap();
            release(&StdFs, &dir);
        }
        // Our own live pid but a different boot: same pid numbers recur
        // across reboots, so this lock is from a dead world.
        std::fs::write(
            dir.join(LOCK_FILE_NAME),
            format!("pid {}\nboot not-this-boot\n", std::process::id()),
        )
        .unwrap();
        if boot_id().is_some() {
            assert!(matches!(status(&StdFs, &dir), LockStatus::Stale { .. }));
            acquire(&StdFs, &dir).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_lock_content_is_stale() {
        let dir = tmpdir("torn");
        std::fs::write(dir.join(LOCK_FILE_NAME), b"pi").unwrap();
        assert_eq!(status(&StdFs, &dir), LockStatus::Stale { pid: None });
        acquire(&StdFs, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
