//! Error type for the durable store.

use grepair_graph::GraphError;
use std::fmt;
use std::path::PathBuf;

/// Errors produced by opening, mutating or recovering a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A store file is structurally damaged beyond the tolerated torn
    /// tail: bad magic, mid-log checksum failure, undecodable
    /// CRC-valid record, sequence gap, or an inconsistent snapshot.
    Corrupt {
        /// File the damage was found in.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// Replaying the log diverged from the recorded outcome — a record
    /// allocated a different id than the one journaled at write time.
    /// Indicates a damaged log or a non-deterministic mutation path;
    /// the store refuses to open rather than serve a silently wrong
    /// graph.
    ReplayDivergence {
        /// Log sequence number of the diverging record.
        seq: u64,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// A live mutation was rejected by the graph (precondition failure,
    /// e.g. a dead endpoint). Nothing was journaled.
    Graph(GraphError),
    /// A previous journal append failed, so the in-memory graph may be
    /// ahead of the log; the store refuses further mutations (anything
    /// journaled now could reference state the log cannot reproduce).
    /// Reopen the directory to recover the last durable state.
    Poisoned,
    /// Another live process holds the store's `LOCK` file. Stale locks
    /// (dead pid, or a pid from a previous boot) are stolen silently;
    /// this error means the holder looks genuinely alive.
    Locked {
        /// The lock file.
        path: PathBuf,
        /// Pid recorded in it.
        pid: u32,
    },
    /// Recovery stopped at a budget checkpoint (deadline, cancellation,
    /// or cap) before the full log was replayed. Nothing was written:
    /// replay is read-only, so the on-disk store is untouched and a
    /// later open with a fresh budget recovers it in full.
    Interrupted(grepair_obs::TripReason),
    /// The directory does not look like a store.
    NotAStore(PathBuf),
    /// `create` was pointed at a directory that already holds a store.
    AlreadyExists(PathBuf),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
            StoreError::ReplayDivergence { seq, detail } => {
                write!(f, "log replay diverged at seq {seq}: {detail}")
            }
            StoreError::Graph(e) => write!(f, "graph rejected mutation: {e}"),
            StoreError::Poisoned => write!(
                f,
                "store poisoned by an earlier journal failure; reopen to recover"
            ),
            StoreError::Locked { path, pid } => {
                write!(
                    f,
                    "store locked by live process {pid} (remove {} only if that process is gone)",
                    path.display()
                )
            }
            StoreError::Interrupted(reason) => {
                write!(f, "store recovery interrupted by budget trip: {reason}")
            }
            StoreError::NotAStore(p) => {
                write!(f, "{} is not a grepair store (no segments or snapshots)", p.display())
            }
            StoreError::AlreadyExists(p) => {
                write!(f, "{} already contains a grepair store", p.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

/// Convenience result alias for store operations.
pub type Result<T, E = StoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_graph::NodeId;

    #[test]
    fn display_messages() {
        assert!(StoreError::NotAStore(PathBuf::from("/x"))
            .to_string()
            .contains("not a grepair store"));
        assert!(StoreError::Corrupt {
            path: PathBuf::from("/x/wal.seg"),
            detail: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
        assert!(StoreError::ReplayDivergence {
            seq: 7,
            detail: "expected n1".into()
        }
        .to_string()
        .contains("seq 7"));
        let g: StoreError = GraphError::NodeNotFound(NodeId(3)).into();
        assert!(g.to_string().contains("n3"));
    }
}
