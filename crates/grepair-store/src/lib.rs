//! # grepair-store
//!
//! Durable persistence for the `grepair` stack: an append-only,
//! checksummed write-ahead log of graph mutations, compact binary
//! snapshots, and crash recovery by snapshot-load + log-replay.
//!
//! The reproduction's repair engine targets graphs that outlive a
//! single process; this crate is the layer that makes applied repairs
//! survive it. The central type is [`DurableGraph`]: a
//! [`grepair_graph::Graph`] wrapper that journals every mutation —
//! including every repair the engine applies, via
//! [`grepair_core::RepairEngine::repair_with_sink`] — before
//! acknowledging it.
//!
//! ## Guarantees
//!
//! - **Prefix consistency.** The durable state is always the graph
//!   produced by some prefix of the acknowledged mutation sequence. A
//!   crash mid-append leaves a torn tail that recovery truncates at the
//!   first bad checksum; it never panics on a partial record and never
//!   applies a record it cannot validate.
//! - **Slot exactness.** Snapshots record tombstones and free-list
//!   order ([`grepair_graph::SlotDump`]), so element ids — which the
//!   engine's violation queues hold across mutations — are identical
//!   after recovery, and log records referencing concrete ids replay
//!   byte-exactly on top of any snapshot.
//! - **Fail-closed validation.** Every record and snapshot is covered
//!   by a CRC-32; damage outside the torn tail refuses recovery with a
//!   precise [`StoreError`] instead of serving a graph with holes.
//!
//! ## Quick tour
//!
//! ```
//! use grepair_store::{DurableGraph, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("grepair-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let mut store = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
//! let ann = store.add_node("Person").unwrap();
//! let oslo = store.add_node("City").unwrap();
//! store.add_edge(ann, oslo, "livesIn").unwrap();
//! store.commit().unwrap();
//! drop(store);
//!
//! // Reopen: recovery replays the journal.
//! let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
//! assert_eq!(store.graph().num_nodes(), 2);
//! assert_eq!(store.last_recovery().records_replayed, 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! ## Fault tolerance
//!
//! Every file operation goes through the [`vfs::Vfs`] trait; production
//! code uses the zero-cost [`StdFs`] passthrough (static dispatch via a
//! default type parameter), while the fault-injection tests drive the
//! identical code paths over an in-memory `FaultyFs` that can fail the
//! Nth fsync, tear a write, or crash at any chosen operation. A failed
//! fsync *poisons* the store (retrying an fsync after a failure can
//! silently lose the pages the first call failed on); transient errors
//! on metadata operations are retried with bounded backoff; a
//! cross-process `LOCK` file (pid + boot id, staleness-detected)
//! enforces the single-writer contract; and [`ReadOnlyStore`] /
//! [`fsck::fsck`] serve and diagnose stores too damaged for a writable
//! open.
//!
//! ## Module map
//!
//! - [`store`] — [`DurableGraph`], recovery, compaction, introspection,
//!   [`ReadOnlyStore`].
//! - [`wal`] — segment files, framing, torn-tail detection.
//! - [`snapshot`] — binary snapshot files.
//! - [`record`] — the journaled [`Mutation`] vocabulary and codec.
//! - [`codec`] — byte-level encoding and the CRC-32.
//! - [`vfs`] — the storage backend trait, [`StdFs`], retry policy, and
//!   the fault-injection backend (tests / `fault-injection` feature).
//! - [`lock`] — the `LOCK` file and staleness detection.
//! - [`fsck`] — dry-run recovery and health reporting.
//! - [`error`] — [`StoreError`].

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod error;
pub mod fsck;
pub mod lock;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use error::{Result, StoreError};
pub use fsck::{fsck, FsckReport, FsckVerdict, SegmentHealth, SnapshotHealth};
pub use lock::LockStatus;
pub use record::Mutation;
pub use store::{
    CompactionStats, DurableGraph, ReadOnlyStore, RecoveryStats, StoreConfig, StoreStatus,
};
pub use vfs::{StdFs, Vfs, VfsFile};
#[cfg(any(test, feature = "fault-injection"))]
pub use vfs::{FaultOp, FaultOpCounts, FaultyFile, FaultyFs, InjectedError};
pub use wal::{SegmentContents, SegmentWriter, WalRecord};
