//! # grepair-cli
//!
//! Command-line workflows over the `grepair` stack. All command logic
//! lives here (the binary is a thin wrapper) so it is unit-testable.
//!
//! ```text
//! grepair gen kg --persons 2000 --noise 0.1 -o dirty.json --clean clean.json
//! grepair stats dirty.json
//! grepair check -r rules.grr -g dirty.json
//! grepair repair -r rules.grr -g dirty.json -o repaired.json
//! grepair analyze -r rules.grr
//! grepair mine -g clean.json -o mined.grr
//! grepair fmt -r rules.grr
//! grepair store init -d ./kg.store --from dirty.json
//! grepair repair -r rules.grr --store ./kg.store
//! grepair store status -d ./kg.store
//! ```
//!
//! All file outputs are written atomically (temp file + rename), so an
//! interrupted command never leaves a truncated graph on disk.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use grepair_core::{
    analyze, lint_rules, parse_rules_with_spans, rule_to_dsl, EngineConfig,
    LintCode, LintPolicy, Planner, RepairEngine, RepairOutcome, RuleSet, RuleSpan, Severity,
};
use grepair_gen::{
    generate_kg, generate_social, inject_kg_noise, KgConfig, NoiseConfig, SocialConfig,
};
use grepair_graph::{Graph, GraphDoc, GraphStats};
use grepair_mine::{mine_all, MinerConfig};
use grepair_store::{fsck, DurableGraph, FsckVerdict, StdFs, StoreConfig, Vfs, VfsFile};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// CLI error: message + suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }
    fn io(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

type CliResult = Result<String, CliError>;

/// Minimal flag parser: `--key value` pairs plus positionals.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parse a raw token list. Tokens starting with `--` take the next
    /// token as value unless they are known boolean switches.
    pub fn parse(tokens: &[String]) -> Self {
        const SWITCHES: &[&str] = &[
            "--naive", "--quick", "--parallel", "--frozen", "--lint", "--read-only",
        ];
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                if SWITCHES.contains(&t.as_str()) {
                    out.switches.push(name.to_owned());
                    i += 1;
                } else if i + 1 < tokens.len() {
                    out.flags.push((name.to_owned(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    out.switches.push(name.to_owned());
                    i += 1;
                }
            } else if let Some(name) = t.strip_prefix('-') {
                if i + 1 < tokens.len() {
                    out.flags.push((name.to_owned(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    out.switches.push(name.to_owned());
                    i += 1;
                }
            } else {
                out.positional.push(t.clone());
                i += 1;
            }
        }
        out
    }

    fn get(&self, names: &[&str]) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| names.contains(&k.as_str()))
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, names: &[&str], default: usize) -> Result<usize, CliError> {
        match self.get(names) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad integer for {names:?}: {v}"))),
        }
    }

    fn get_f64(&self, names: &[&str], default: f64) -> Result<f64, CliError> {
        match self.get(names) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad number for {names:?}: {v}"))),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Arm span tracing when `--trace FILE` was given. Any spans already
/// buffered by earlier work in this process are discarded so the export
/// covers exactly this command. Returns the output path.
fn trace_arg(args: &Args) -> Option<String> {
    let path = args.get(&["trace"])?.to_owned();
    grepair_obs::take_events();
    grepair_obs::set_tracing(true);
    Some(path)
}

/// Disarm tracing and export the buffered spans as a Chrome trace file
/// (load it in `chrome://tracing` or Perfetto).
///
/// Export failure is *not* an error: the repair (or check) the trace
/// was recording has already succeeded, and losing a diagnostics file
/// must never make the command that produced real results exit
/// non-zero. A failure is recorded as a warn-level `trace.export_failed`
/// obs event and noted in the output instead.
fn write_trace(path: &str, out: &mut String) {
    grepair_obs::set_tracing(false);
    let events = grepair_obs::take_events();
    match write_atomic(path, &grepair_obs::chrome_trace_json(&events)) {
        Ok(()) => writeln!(out, "wrote trace ({} events) to {path}", events.len()).unwrap(),
        Err(e) => {
            grepair_obs::event(
                grepair_obs::Level::Warn,
                "trace.export_failed",
                e.message.clone(),
            );
            writeln!(out, "warning: trace export failed: {}", e.message).unwrap();
        }
    }
}

/// What `--max-ops N` caps: applied repair operations (repair/watch) or
/// enumerated candidate matches (check, which never applies anything).
#[derive(Clone, Copy)]
enum MaxOps {
    Ops,
    Matches,
}

/// Build this run's [`grepair_obs::Budget`] from `--timeout SECS` /
/// `--max-ops N` and register its cancel token so the binary's SIGINT
/// handler (see [`cancel_active`]) can flip it for graceful shutdown.
fn make_budget(args: &Args, cmd: &str, max_ops: MaxOps) -> Result<grepair_obs::Budget, CliError> {
    let mut budget = grepair_obs::Budget::unlimited();
    if let Some(v) = args.get(&["timeout"]) {
        let secs: f64 = v
            .parse()
            .ok()
            .filter(|s: &f64| s.is_finite() && *s > 0.0)
            .ok_or_else(|| {
                CliError::usage(format!("{cmd}: bad --timeout {v:?} (want seconds > 0)"))
            })?;
        budget = budget.with_deadline(Duration::from_secs_f64(secs));
    }
    if let Some(v) = args.get(&["max-ops"]) {
        let n: u64 = v
            .parse()
            .ok()
            .filter(|n: &u64| *n > 0)
            .ok_or_else(|| {
                CliError::usage(format!("{cmd}: bad --max-ops {v:?} (want a positive integer)"))
            })?;
        budget = match max_ops {
            MaxOps::Ops => budget.with_op_cap(n),
            MaxOps::Matches => budget.with_match_cap(n),
        };
    }
    register_cancel_token(budget.token());
    Ok(budget)
}

fn cancel_registry() -> &'static Mutex<Vec<grepair_obs::CancelToken>> {
    static REGISTRY: OnceLock<Mutex<Vec<grepair_obs::CancelToken>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a budget's cancel token with the process-wide SIGINT hook.
pub fn register_cancel_token(token: grepair_obs::CancelToken) {
    cancel_registry().lock().unwrap().push(token);
}

/// Cancel every budget registered so far. The binary wires this to
/// SIGINT: the engine finishes its current round, commits, and the
/// command prints a partial report with outcome `cancelled`.
pub fn cancel_active() {
    for token in cancel_registry().lock().unwrap().iter() {
        token.cancel();
    }
}

/// Exit code for a repair/check that stopped early: 130 (128+SIGINT)
/// for cancellation, 5 for every other limit trip (deadline, op
/// budget, round limit). `None` means the run completed.
fn outcome_exit_code(outcome: RepairOutcome) -> Option<i32> {
    match outcome {
        RepairOutcome::Completed => None,
        RepairOutcome::Cancelled => Some(130),
        RepairOutcome::RoundLimit | RepairOutcome::Deadline | RepairOutcome::OpBudget => Some(5),
    }
}

/// One-line human explanation of a non-`Completed` outcome.
fn explain_outcome(outcome: RepairOutcome) -> &'static str {
    match outcome {
        RepairOutcome::Completed => "ran to convergence",
        RepairOutcome::RoundLimit => {
            "round limit exhausted before convergence (raise max_rounds or check rule termination; \
             residual violations remain)"
        }
        RepairOutcome::Deadline => {
            "deadline exceeded; stopped at a round boundary (the graph holds the completed rounds)"
        }
        RepairOutcome::Cancelled => {
            "cancelled; stopped at a round boundary (the graph holds the completed rounds)"
        }
        RepairOutcome::OpBudget => {
            "op budget exhausted; stopped at a round boundary (the graph holds the completed rounds)"
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let doc = if path.ends_with(".txt") {
        GraphDoc::from_text(&text)
    } else {
        GraphDoc::from_json(&text)
    }
    .map_err(|e| CliError::io(format!("cannot parse {path}: {e}")))?;
    Graph::from_doc(&doc).map_err(|e| CliError::io(format!("cannot build graph: {e}")))
}

/// Write `contents` to `path` atomically: temp file in the same
/// directory, fsync, then rename over the target. An interrupted command
/// leaves either the old file or the new one — never a truncated mix.
///
/// Non-regular targets (`/dev/null`, pipes) are written in place —
/// renaming a temp file over a device would *replace the device*. A
/// symlink target is resolved first so the write goes *through* the
/// link (renaming would replace the link itself with a regular file).
fn write_atomic(path: &str, contents: &str) -> Result<(), CliError> {
    let io_err = |e: std::io::Error| CliError::io(format!("cannot write {path}: {e}"));
    let target: std::path::PathBuf =
        if std::fs::symlink_metadata(path).is_ok_and(|m| m.file_type().is_symlink()) {
            match std::fs::canonicalize(path) {
                Ok(resolved) => resolved,
                // Dangling link: write through it, creating the target.
                Err(_) => return std::fs::write(path, contents).map_err(io_err),
            }
        } else {
            path.into()
        };
    if std::fs::metadata(&target).is_ok_and(|m| !m.is_file()) {
        return std::fs::write(&target, contents).map_err(io_err);
    }
    write_atomic_on(&StdFs, &target, contents).map_err(io_err)
}

/// The atomic-write core, over a swappable [`Vfs`] backend: temp file
/// in the target's directory, `fdatasync`, rename over the target,
/// temp cleanup on any failure. [`write_atomic`] (every CLI file
/// output and the `--trace` export) runs this over [`StdFs`] after
/// resolving symlinks and diverting non-regular targets; the
/// fault-injection tests drive the *same code* over a `FaultyFs` that
/// fails each step in turn.
pub fn write_atomic_on<V: Vfs>(vfs: &V, target: &Path, contents: &str) -> std::io::Result<()> {
    let dir = target.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = target
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("invalid output path {}", target.display()),
            )
        })?;
    let tmp = dir
        .unwrap_or_else(|| Path::new("."))
        .join(format!(".{file_name}.{}.tmp", std::process::id()));
    let write_tmp = || -> std::io::Result<()> {
        let mut f = vfs.create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_data()
    };
    write_tmp()
        .and_then(|()| vfs.rename(&tmp, target))
        .inspect_err(|_| {
            // Never leave temp droppings, whichever step failed.
            let _ = vfs.remove_file(&tmp);
        })
}

fn save_graph(g: &Graph, path: &str) -> Result<(), CliError> {
    let doc = g.to_doc();
    let text = if path.ends_with(".txt") {
        doc.to_text()
    } else {
        doc.to_json()
    };
    write_atomic(path, &text)
}

fn load_rules(path: &str) -> Result<RuleSet, CliError> {
    load_rules_spanned(path).map(|(rules, _)| rules)
}

/// Load rules plus source spans. `.grr` text carries rule positions for
/// lint diagnostics; `.json` rule sets have none.
fn load_rules_spanned(path: &str) -> Result<(RuleSet, Vec<RuleSpan>), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    if path.ends_with(".json") {
        let rules =
            RuleSet::from_json(&text).map_err(|e| CliError::io(format!("bad rule json: {e}")))?;
        Ok((rules, Vec::new()))
    } else {
        let (rules, spans) =
            parse_rules_with_spans(&text).map_err(|e| CliError::io(format!("bad rule DSL: {e}")))?;
        let set = RuleSet::new(path.to_owned(), rules)
            .map_err(|e| CliError::io(format!("invalid rule set: {e}")))?;
        Ok((set, spans))
    }
}

/// Build a [`LintPolicy`] from `--deny CODE` / `--warn CODE` /
/// `--allow CODE` flags, applied in command-line order (last wins).
fn lint_policy(args: &Args) -> Result<LintPolicy, CliError> {
    let mut policy = LintPolicy::default();
    for (name, value) in &args.flags {
        let severity = match name.as_str() {
            "deny" => Severity::Deny,
            "warn" => Severity::Warn,
            "allow" => Severity::Allow,
            _ => continue,
        };
        let code = LintCode::parse(value).ok_or_else(|| {
            CliError::usage(format!(
                "unknown lint code {value:?} (expected GR001..GR007 or a lint name)"
            ))
        })?;
        policy.set(code, severity);
    }
    Ok(policy)
}

/// `--lint` pre-flight for check/repair/watch: refuse deny-level rule
/// sets before touching the graph.
fn lint_preflight(
    cmd: &str,
    origin: &str,
    rules: &RuleSet,
    spans: &[RuleSpan],
    args: &Args,
) -> Result<(), CliError> {
    if !args.has("lint") {
        return Ok(());
    }
    let report = lint_rules(&rules.rules, spans, &lint_policy(args)?);
    if report.has_denials() {
        return Err(CliError {
            message: format!(
                "{cmd}: refusing deny-level rule set (pass --allow CODE to override)\n\n{}",
                report.render_text(origin)
            ),
            code: 3,
        });
    }
    Ok(())
}

/// Top-level usage text.
pub const USAGE: &str = "grepair — rule-based graph repairing

usage: grepair <command> [args]

commands:
  gen kg        --persons N [--seed S] [--noise RATE] -o OUT [--clean C] [--ledger L]
  gen social    --accounts N [--seed S] -o OUT
  stats         GRAPH
  check         -r RULES (-g GRAPH | --store DIR [--read-only]) [--frozen] [--trace FILE]
                [--timeout SECS] [--max-ops N]
  explain       -r RULES (-g GRAPH | --store DIR [--read-only])
  repair        -r RULES -g GRAPH -o OUT [--naive] [--frozen] [--report R] [--trace FILE]
                [--timeout SECS] [--max-ops N]
  repair        -r RULES --store DIR [-o OUT] [--naive] [--frozen] [--report R] [--trace FILE]
  watch         -r RULES (-g GRAPH [-o OUT] | --store DIR) [--runs N] [--trace FILE]
                [--timeout SECS] [--max-ops N]
  metrics       [-r RULES (-g GRAPH | --store DIR)] [--format json]
  lint          -r RULES [--format json] [--deny CODE] [--warn CODE] [--allow CODE]
  analyze       -r RULES
  mine          -g GRAPH [-o RULES.grr] [--min-support N] [--min-confidence C]
  fmt           -r RULES
  store init    -d DIR [--from GRAPH]
  store status  -d DIR
  store compact -d DIR
  store export  -d DIR -o OUT
  store fsck    -d DIR [--format json]

Graph files are .json (GraphDoc) or .txt (fixture format); rule files are
.grr DSL or .json. --frozen runs full scans over a compacted CSR snapshot
of the graph (faster on large graphs, identical results; --naive enables
it by default).

`lint` runs the static rule-set analyses as stable diagnostics
(GR001..GR007: termination, consistency, effectiveness, implication,
satisfiability, unused variables, value-kind mismatches). Deny-level
findings exit with code 3; --deny/--warn/--allow override per-code
severities (last flag wins), --format json emits machine output.
check/repair/watch accept --lint to run the same pre-flight and refuse
deny-level rule sets before touching the graph.

`explain` prints, per rule, the join plan the cost-based planner chooses
against the given graph's cardinality statistics: variable order, the
expected candidate access path per step (label-index / extend /
attr-join / scan), the cardinality estimate, and the accumulated cost —
plus the statistics epoch, whether they were maintained on the write
path or recomputed, drift since the last refresh, and plan-cache
compile/hit counters.

`watch` runs N repair passes (default 2) through one long-lived
planner, printing per-run plan-cache counters — run 2 onwards should
show cache hits and zero compiles. With --store the store's own
always-warm planner is used and every pass commits durably.

A store (--store/-d DIR) is a durable graph: every mutation and every
applied repair is journaled to a checksummed write-ahead log with
periodic binary snapshots, and reopening recovers the exact committed
state even after a crash mid-write. `repair --store` commits repairs
durably and compacts the log when it outgrows its threshold.

`store fsck` is a dry-run recovery: it walks the directory exactly the
way open would — newest loadable snapshot, ordered replay, torn-tail
detection — and reports per-file health, where valid data ends, and the
lock state, without modifying anything. Verdict 'clean' or 'torn-tail'
exits 0 (a writable open succeeds); 'degraded' (damage open refuses to
absorb) prints the report on stderr and exits 4. check/explain accept
--read-only alongside --store: the store opens without taking the lock
(safe beside a live writer) and, when degraded, serves the newest
loadable snapshot plus the longest clean log prefix instead of
refusing.

Runtime limits: --timeout SECS and --max-ops N (on check/repair/watch)
attach a budget to the run — a deadline and an applied-op cap (for
check, a candidate-match cap). Limits are observed cooperatively at
round and scan boundaries: a tripped repair finishes nothing mid-round,
commits the completed rounds (durably, with --store), prints a partial
report with a typed outcome, and exits 5. SIGINT (^C) cancels the same
way — finish round, commit, report, exit 130; a second ^C aborts
immediately. A repair that exhausts max_rounds without converging
reports outcome 'round-limit' and also exits 5, distinguishing a blown
limit from residual violations under a completed fixpoint.

Observability: --trace FILE (on check/repair/watch) records spans from
every layer — engine rounds, matching, planning, freezes, WAL writes —
and exports them as a Chrome trace (load in chrome://tracing or
Perfetto). `metrics` prints the process-wide metrics registry (counters,
gauges, latency histograms with p50/p90/p99, warn events) as text or,
with --format json, in a stable JSON schema; given -r plus a graph or
store it first runs a read-only check pass with telemetry armed so every
layer contributes fresh samples. `watch` appends a per-run metrics
line with that run's round and match counts.";

/// Dispatch a command line (without the program name). Returns the text
/// to print on stdout.
pub fn dispatch(tokens: &[String]) -> CliResult {
    let Some(cmd) = tokens.first().map(String::as_str) else {
        return Err(CliError::usage(USAGE));
    };
    let rest = &tokens[1..];
    match cmd {
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "check" => cmd_check(rest),
        "explain" => cmd_explain(rest),
        "repair" => cmd_repair(rest),
        "watch" => cmd_watch(rest),
        "lint" => cmd_lint(rest),
        "analyze" => cmd_analyze(rest),
        "mine" => cmd_mine(rest),
        "fmt" => cmd_fmt(rest),
        "store" => cmd_store(rest),
        "metrics" => cmd_metrics(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

fn cmd_gen(tokens: &[String]) -> CliResult {
    let Some(kind) = tokens.first().map(String::as_str) else {
        return Err(CliError::usage("gen: expected 'kg' or 'social'"));
    };
    let args = Args::parse(&tokens[1..]);
    let out = args
        .get(&["o", "out"])
        .ok_or_else(|| CliError::usage("gen: missing -o OUT"))?
        .to_owned();
    match kind {
        "kg" => {
            let persons = args.get_usize(&["persons"], 1000)?;
            let seed = args.get_usize(&["seed"], 42)? as u64;
            let noise = args.get_f64(&["noise"], 0.0)?;
            let (clean, refs) = generate_kg(&KgConfig {
                seed,
                ..KgConfig::with_persons(persons)
            });
            let mut report = String::new();
            if noise > 0.0 {
                let mut dirty = clean.clone();
                let truth = inject_kg_noise(
                    &mut dirty,
                    &refs,
                    &NoiseConfig {
                        rate: noise,
                        seed,
                        ..NoiseConfig::default()
                    },
                );
                save_graph(&dirty, &out)?;
                if let Some(clean_path) = args.get(&["clean"]) {
                    save_graph(&clean, clean_path)?;
                }
                if let Some(ledger_path) = args.get(&["ledger"]) {
                    let json = serde_json::to_string_pretty(&truth.errors)
                        .expect("ledger serializes");
                    write_atomic(ledger_path, &json)?;
                }
                let (i, c, r) = truth.class_counts();
                writeln!(
                    report,
                    "wrote dirty KG to {out} ({} errors: {i} incompleteness, {c} conflict, {r} redundancy)",
                    truth.len()
                )
                .unwrap();
            } else {
                save_graph(&clean, &out)?;
                writeln!(report, "wrote clean KG to {out}").unwrap();
            }
            write!(report, "{}", GraphStats::compute(&clean)).unwrap();
            Ok(report)
        }
        "social" => {
            let accounts = args.get_usize(&["accounts"], 1000)?;
            let seed = args.get_usize(&["seed"], 99)? as u64;
            let (g, _) = generate_social(&SocialConfig {
                accounts,
                seed,
                ..SocialConfig::default()
            });
            save_graph(&g, &out)?;
            Ok(format!(
                "wrote social graph to {out}\n{}",
                GraphStats::compute(&g)
            ))
        }
        other => Err(CliError::usage(format!("gen: unknown kind {other:?}"))),
    }
}

fn cmd_stats(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("stats: expected GRAPH path"))?;
    let g = load_graph(path)?;
    Ok(format!("{path}: {}", GraphStats::compute(&g)))
}

fn open_store(dir: &str) -> Result<DurableGraph, CliError> {
    DurableGraph::open(Path::new(dir), StoreConfig::default())
        .map_err(|e| CliError::io(format!("cannot open store {dir}: {e}")))
}

fn recovery_summary(store: &DurableGraph) -> String {
    let r = store.last_recovery();
    let mut out = format!(
        "opened store: snapshot seq {}, {} records replayed in {:?}",
        r.snapshot_seq, r.records_replayed, r.wall
    );
    if r.torn_tail_bytes > 0 {
        write!(out, " (truncated {} torn tail bytes)", r.torn_tail_bytes).unwrap();
    }
    if r.snapshots_skipped > 0 {
        write!(out, " ({} damaged snapshots skipped)", r.snapshots_skipped).unwrap();
    }
    out
}

/// Open a store as a graph for a read path. With `--read-only` the
/// degraded open is used: no lock is taken (works beside a live
/// writer) and a damaged tail is served as the newest loadable prefix
/// instead of refusing. The summary of what was (or wasn't) recovered
/// goes into `header`.
fn store_graph(dir: &str, read_only: bool, header: &mut String) -> Result<Graph, CliError> {
    if !read_only {
        let store = open_store(dir)?;
        writeln!(header, "{}", recovery_summary(&store)).unwrap();
        return Ok(store.into_graph());
    }
    let ro = DurableGraph::open_read_only(Path::new(dir))
        .map_err(|e| CliError::io(format!("cannot open store {dir} read-only: {e}")))?;
    writeln!(
        header,
        "opened store read-only: last seq {} (snapshot {}, {} records replayed)",
        ro.last_seq(),
        ro.snapshot_seq(),
        ro.records_replayed()
    )
    .unwrap();
    if ro.degraded() {
        writeln!(
            header,
            "DEGRADED: serving newest loadable prefix; run `grepair store fsck -d {dir}` for details"
        )
        .unwrap();
        for issue in ro.issues() {
            writeln!(header, "  issue: {issue}").unwrap();
        }
    }
    Ok(ro.into_graph())
}

fn cmd_check(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules_path = args
        .get(&["r", "rules"])
        .ok_or_else(|| CliError::usage("check: missing -r RULES"))?
        .to_owned();
    let (rules, spans) = load_rules_spanned(&rules_path)?;
    lint_preflight("check", &rules_path, &rules, &spans, &args)?;
    let trace = trace_arg(&args);
    let mut header = String::new();
    let g = match (args.get(&["g", "graph"]), args.get(&["store"])) {
        (Some(path), None) => load_graph(path)?,
        (None, Some(dir)) => store_graph(dir, args.has("read-only"), &mut header)?,
        _ => {
            return Err(CliError::usage(
                "check: need exactly one of -g GRAPH or --store DIR",
            ))
        }
    };
    // One warm planner for the whole check: statistics-driven join
    // orders (adopted free when the graph maintains them — store-backed
    // graphs do), plans compiled once even when several rules share a
    // pattern shape.
    let planner = Planner::new();
    planner.refresh_stats(&g);
    let budget = make_budget(&args, "check", MaxOps::Matches)?;
    let cfg = grepair_match::MatchConfig::default();
    let counts: Vec<usize> = if args.has("frozen") {
        let frozen = grepair_graph::FrozenGraph::freeze(&g);
        let matcher =
            grepair_match::Matcher::with_planner(&frozen, cfg, &planner).with_budget(&budget);
        rules.rules.iter().map(|r| matcher.count(&r.pattern)).collect()
    } else {
        let matcher =
            grepair_match::Matcher::with_planner(&g, cfg, &planner).with_budget(&budget);
        rules.rules.iter().map(|r| matcher.count(&r.pattern)).collect()
    };
    let mut out = header;
    let mut total = 0usize;
    for (r, n) in rules.rules.iter().zip(counts) {
        total += n;
        writeln!(out, "{:<40} {:>6}", r.name, n).unwrap();
    }
    writeln!(out, "{:<40} {:>6}", "TOTAL", total).unwrap();
    if let Some(reason) = budget.tripped() {
        writeln!(
            out,
            "stopped early ({reason}); counts are a lower bound over the scanned prefix"
        )
        .unwrap();
    }
    if let Some(path) = &trace {
        write_trace(path, &mut out);
    }
    if let Some(reason) = budget.tripped() {
        let code = outcome_exit_code(RepairOutcome::from(reason)).unwrap_or(5);
        return Err(CliError { message: out, code });
    }
    Ok(out)
}

fn cmd_explain(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("explain: missing -r RULES"))?,
    )?;
    let mut out = String::new();
    let g = match (args.get(&["g", "graph"]), args.get(&["store"])) {
        (Some(path), None) => load_graph(path)?,
        (None, Some(dir)) => store_graph(dir, args.has("read-only"), &mut out)?,
        _ => {
            return Err(CliError::usage(
                "explain: need exactly one of -g GRAPH or --store DIR",
            ))
        }
    };
    let planner = Planner::new();
    planner.refresh_stats(&g);
    let stats = planner.stats().expect("stats just refreshed");
    let source = planner
        .stats_source()
        .map(|s| s.to_string())
        .unwrap_or_else(|| "none".to_owned());
    writeln!(
        out,
        "statistics: |V|={} |E|={} (version {}, epoch {}, {source}, drift {:.1}%)",
        stats.nodes,
        stats.edges,
        stats.version,
        planner.stats_epoch(),
        planner.drift(&g).unwrap_or(0.0) * 100.0
    )
    .unwrap();
    let matcher =
        grepair_match::Matcher::with_planner(&g, grepair_match::MatchConfig::default(), &planner);
    for r in &rules.rules {
        let ex = matcher.explain(&r.pattern);
        writeln!(out, "\nrule {}:", r.name).unwrap();
        if !ex.satisfiable {
            writeln!(
                out,
                "  unmatchable: a required label or edge label is absent from this graph"
            )
            .unwrap();
            continue;
        }
        for (i, s) in ex.steps.iter().enumerate() {
            let label = s.label.as_deref().unwrap_or("*");
            writeln!(
                out,
                "  {}. {:<20} {:<12} est {:.2}",
                i + 1,
                format!("{}:{label}", s.var),
                s.access.to_string(),
                s.estimate
            )
            .unwrap();
        }
        writeln!(out, "  estimated cost: {:.1}", ex.estimated_cost).unwrap();
    }
    writeln!(
        out,
        "\nplan cache: {} compiled, {} hits, {} adaptive re-plans",
        planner.compile_count(),
        planner.cache_hit_count(),
        planner.replan_count()
    )
    .unwrap();
    out.truncate(out.trim_end().len());
    Ok(out)
}

fn cmd_watch(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules_path = args
        .get(&["r", "rules"])
        .ok_or_else(|| CliError::usage("watch: missing -r RULES"))?
        .to_owned();
    let (rules, spans) = load_rules_spanned(&rules_path)?;
    lint_preflight("watch", &rules_path, &rules, &spans, &args)?;
    let runs = args.get_usize(&["runs"], 2)?.max(1);
    let trace = trace_arg(&args);
    let budget = make_budget(&args, "watch", MaxOps::Ops)?;
    let engine = RepairEngine::new(EngineConfig::default()).with_budget(&budget);
    let mut out = String::new();
    let mut final_outcome = RepairOutcome::Completed;
    // Per-update metrics: global counters sampled around each run so the
    // line shows this run's delta.
    let rounds_ctr = grepair_obs::counter("engine.rounds");
    let matches_ctr = grepair_obs::counter("match.matches_found");
    let print_metrics = |out: &mut String, r0: u64, m0: u64| {
        writeln!(
            out,
            "  metrics: {} rounds, {} matches found",
            grepair_obs::counter("engine.rounds").get() - r0,
            grepair_obs::counter("match.matches_found").get() - m0,
        )
        .unwrap();
    };
    let print_run = |out: &mut String, i: usize, report: &grepair_core::RepairReport| {
        writeln!(
            out,
            "run {}: {} repairs, residual {}, {} plans compiled, {} cache hits{}, outcome {}",
            i + 1,
            report.repairs_applied,
            report.violations_remaining,
            report.pattern_compiles,
            report.plan_cache_hits,
            if report.plan_replans > 0 {
                format!(", {} re-plans", report.plan_replans)
            } else {
                String::new()
            },
            report.outcome
        )
        .unwrap();
    };
    match (args.get(&["g", "graph"]), args.get(&["store"])) {
        (Some(path), None) => {
            let mut g = load_graph(path)?;
            // The whole point of the watch loop: one planner outlives
            // every run, so run 2+ plans entirely from cache.
            let planner = Planner::new();
            for i in 0..runs {
                let (r0, m0) = (rounds_ctr.get(), matches_ctr.get());
                let report = engine.repair_with_planner(&mut g, &rules.rules, &planner);
                print_run(&mut out, i, &report);
                print_metrics(&mut out, r0, m0);
                final_outcome = report.outcome;
                // A budget trip is sticky: every later run would return
                // the same outcome immediately. Stop at this boundary.
                if report.outcome.is_budget_trip() {
                    break;
                }
            }
            // The graph holds the committed prefix even on a trip —
            // still worth exporting.
            if let Some(out_path) = args.get(&["o", "out"]) {
                save_graph(&g, out_path)?;
                writeln!(out, "wrote repaired graph to {out_path}").unwrap();
            }
        }
        (None, Some(dir)) => {
            let mut store = open_store(dir)?;
            writeln!(out, "{}", recovery_summary(&store)).unwrap();
            for i in 0..runs {
                let (r0, m0) = (rounds_ctr.get(), matches_ctr.get());
                let report = store
                    .repair(&engine, &rules.rules)
                    .map_err(|e| CliError::io(format!("durable repair failed: {e}")))?;
                print_run(&mut out, i, &report);
                print_metrics(&mut out, r0, m0);
                final_outcome = report.outcome;
                if report.outcome.is_budget_trip() {
                    break;
                }
            }
            writeln!(out, "last seq {}", store.last_seq()).unwrap();
        }
        _ => {
            return Err(CliError::usage(
                "watch: need exactly one of -g GRAPH or --store DIR",
            ))
        }
    }
    if final_outcome != RepairOutcome::Completed {
        writeln!(out, "stopped: {}", explain_outcome(final_outcome)).unwrap();
    }
    if let Some(path) = &trace {
        write_trace(path, &mut out);
    }
    out.truncate(out.trim_end().len());
    if let Some(code) = outcome_exit_code(final_outcome) {
        return Err(CliError { message: out, code });
    }
    Ok(out)
}

fn cmd_repair(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules_path = args
        .get(&["r", "rules"])
        .ok_or_else(|| CliError::usage("repair: missing -r RULES"))?
        .to_owned();
    let (rules, spans) = load_rules_spanned(&rules_path)?;
    lint_preflight("repair", &rules_path, &rules, &spans, &args)?;
    let trace = trace_arg(&args);
    let mut config = if args.has("naive") {
        EngineConfig::naive_with_indexes()
    } else {
        EngineConfig::default()
    };
    if args.has("frozen") {
        config.freeze_scans = true;
    }
    let budget = make_budget(&args, "repair", MaxOps::Ops)?;
    let engine = RepairEngine::new(config).with_budget(&budget);

    let mut out = String::new();
    let report = match (args.get(&["g", "graph"]), args.get(&["store"])) {
        (Some(graph_path), None) => {
            let mut g = load_graph(graph_path)?;
            let out_path = args
                .get(&["o", "out"])
                .ok_or_else(|| CliError::usage("repair: missing -o OUT"))?;
            let report = engine.repair(&mut g, &rules.rules);
            save_graph(&g, out_path)?;
            writeln!(out, "wrote repaired graph to {out_path}").unwrap();
            report
        }
        (None, Some(dir)) => {
            let mut store = open_store(dir)?;
            writeln!(out, "{}", recovery_summary(&store)).unwrap();
            let report = store
                .repair(&engine, &rules.rules)
                .map_err(|e| CliError::io(format!("durable repair failed: {e}")))?;
            if let Some(c) = store
                .maybe_compact()
                .map_err(|e| CliError::io(format!("compaction failed: {e}")))?
            {
                writeln!(
                    out,
                    "compacted: snapshot at seq {}, {} segments retired",
                    c.snapshot_seq, c.segments_retired
                )
                .unwrap();
            }
            writeln!(
                out,
                "durably committed {} repairs to {dir} (last seq {})",
                report.repairs_applied,
                store.last_seq()
            )
            .unwrap();
            // -o alongside --store exports the repaired graph too.
            if let Some(out_path) = args.get(&["o", "out"]) {
                save_graph(store.graph(), out_path)?;
                writeln!(out, "wrote repaired graph to {out_path}").unwrap();
            }
            report
        }
        _ => {
            return Err(CliError::usage(
                "repair: need exactly one of -g GRAPH (with -o OUT) or --store DIR",
            ))
        }
    };
    if let Some(rp) = args.get(&["report"]) {
        write_atomic(rp, &serde_json::to_string_pretty(&report).unwrap())?;
    }
    writeln!(
        out,
        "applied {} repairs in {:?} (converged: {}, outcome: {}, residual: {})",
        report.repairs_applied,
        report.wall,
        report.converged,
        report.outcome,
        report.violations_remaining
    )
    .unwrap();
    for s in report.per_rule.iter().filter(|s| s.repairs_applied > 0) {
        writeln!(out, "  {:<40} {:>6}", s.name, s.repairs_applied).unwrap();
    }
    if report.outcome != RepairOutcome::Completed {
        writeln!(out, "stopped: {}", explain_outcome(report.outcome)).unwrap();
    }
    if let Some(path) = &trace {
        write_trace(path, &mut out);
    }
    out.truncate(out.trim_end().len());
    if let Some(code) = outcome_exit_code(report.outcome) {
        return Err(CliError { message: out, code });
    }
    Ok(out)
}

/// `metrics` — print the global metrics registry. With `-r RULES` and a
/// graph (or store) a read-only check pass runs first with telemetry
/// armed, so the snapshot carries fresh counters, histograms and spans
/// from every layer; bare `metrics` prints whatever the process has
/// accumulated so far.
fn cmd_metrics(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    if args.get(&["r", "rules"]).is_some() {
        grepair_obs::set_tracing(true);
        let pass = cmd_check(tokens);
        grepair_obs::set_tracing(false);
        grepair_obs::take_events();
        pass?;
    }
    Ok(match args.get(&["format"]) {
        Some("json") => grepair_obs::snapshot_json(),
        _ => grepair_obs::snapshot_text(),
    })
}

fn cmd_store(tokens: &[String]) -> CliResult {
    let Some(sub) = tokens.first().map(String::as_str) else {
        return Err(CliError::usage(
            "store: expected 'init', 'status', 'compact', 'export' or 'fsck'",
        ));
    };
    let args = Args::parse(&tokens[1..]);
    let dir = args
        .get(&["d", "dir", "store"])
        .ok_or_else(|| CliError::usage(format!("store {sub}: missing -d DIR")))?;
    match sub {
        "init" => {
            let store = match args.get(&["from"]) {
                Some(graph_path) => {
                    let g = load_graph(graph_path)?;
                    DurableGraph::create_with(Path::new(dir), StoreConfig::default(), g)
                }
                None => DurableGraph::create(Path::new(dir), StoreConfig::default()),
            }
            .map_err(|e| CliError::io(format!("cannot init store {dir}: {e}")))?;
            let status = store
                .status()
                .map_err(|e| CliError::io(e.to_string()))?;
            Ok(format!("initialized store at {dir}\n{status}"))
        }
        "status" => {
            let store = open_store(dir)?;
            let status = store
                .status()
                .map_err(|e| CliError::io(e.to_string()))?;
            Ok(format!("{}\n{status}", recovery_summary(&store)))
        }
        "compact" => {
            let mut store = open_store(dir)?;
            let c = store
                .compact()
                .map_err(|e| CliError::io(format!("compaction failed: {e}")))?;
            Ok(format!(
                "compacted {dir}: snapshot at seq {}, {} segments and {} snapshots retired, {} bytes reclaimed",
                c.snapshot_seq, c.segments_retired, c.snapshots_retired, c.bytes_reclaimed
            ))
        }
        "export" => {
            let out_path = args
                .get(&["o", "out"])
                .ok_or_else(|| CliError::usage("store export: missing -o OUT"))?;
            let store = open_store(dir)?;
            save_graph(store.graph(), out_path)?;
            Ok(format!("exported store {dir} to {out_path}"))
        }
        "fsck" => {
            let report = fsck(Path::new(dir))
                .map_err(|e| CliError::io(format!("cannot fsck store {dir}: {e}")))?;
            let rendered = match args.get(&["format"]) {
                None | Some("text") => report.render_text(),
                Some("json") => report.to_json(),
                Some(other) => {
                    return Err(CliError::usage(format!(
                        "store fsck: unknown format {other:?} (expected 'text' or 'json')"
                    )))
                }
            };
            if report.verdict == FsckVerdict::Degraded {
                // A store a writable open would refuse fails the check:
                // the report goes to stderr with a distinct exit code so
                // scripts and CI can gate on it. A torn tail is not a
                // failure — it is the normal residue of a crash and a
                // writable open absorbs it.
                return Err(CliError {
                    message: rendered,
                    code: 4,
                });
            }
            Ok(rendered)
        }
        other => Err(CliError::usage(format!("store: unknown subcommand {other:?}"))),
    }
}

fn cmd_lint(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules_path = args
        .get(&["r", "rules"])
        .ok_or_else(|| CliError::usage("lint: missing -r RULES"))?
        .to_owned();
    let (rules, spans) = load_rules_spanned(&rules_path)?;
    let report = lint_rules(&rules.rules, &spans, &lint_policy(&args)?);
    let rendered = match args.get(&["format"]) {
        None | Some("text") => report.render_text(&rules_path),
        Some("json") => report.to_json(),
        Some(other) => {
            return Err(CliError::usage(format!(
                "lint: unknown format {other:?} (expected 'text' or 'json')"
            )))
        }
    };
    if report.has_denials() {
        // Deny-level findings fail the lint: the report goes to stderr
        // with a distinct exit code so CI can gate on it.
        return Err(CliError {
            message: rendered,
            code: 3,
        });
    }
    Ok(rendered)
}

fn cmd_analyze(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("analyze: missing -r RULES"))?,
    )?;
    let report = analyze(&rules.rules);
    let mut out = String::new();
    writeln!(out, "analysed {} rules in {}µs", rules.len(), report.micros).unwrap();
    for (r, e) in rules.rules.iter().zip(&report.effectiveness) {
        writeln!(out, "  {:<40} {:?}", r.name, e).unwrap();
    }
    writeln!(out, "terminating: {}", report.terminating).unwrap();
    for c in &report.cycles {
        let names: Vec<&str> = c.iter().map(|&i| rules.rules[i].name.as_str()).collect();
        writeln!(out, "  cycle: {}", names.join(" → ")).unwrap();
    }
    writeln!(out, "conflicts: {}", report.conflicts.len()).unwrap();
    for c in &report.conflicts {
        writeln!(
            out,
            "  {} ↔ {} [{}] {}",
            rules.rules[c.a].name, rules.rules[c.b].name, c.kind, c.detail
        )
        .unwrap();
    }
    writeln!(out, "implications: {}", report.implications.len()).unwrap();
    for i in &report.implications {
        writeln!(
            out,
            "  {} ⊑ {}",
            rules.rules[i.redundant].name, rules.rules[i.by].name
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_mine(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let g = load_graph(
        args.get(&["g", "graph"])
            .ok_or_else(|| CliError::usage("mine: missing -g GRAPH"))?,
    )?;
    let cfg = MinerConfig {
        min_support: args.get_usize(&["min-support"], 20)?,
        min_confidence: args.get_f64(&["min-confidence"], 0.9)?,
        ..MinerConfig::default()
    };
    let mined = mine_all(&g, &cfg);
    let mut dsl = String::new();
    let mut summary = String::new();
    writeln!(summary, "mined {} rules:", mined.len()).unwrap();
    for m in &mined {
        writeln!(
            summary,
            "  {:<55} {:?} support {:>5} confidence {:.3}",
            m.rule.name, m.kind, m.support, m.confidence
        )
        .unwrap();
        writeln!(
            dsl,
            "# {:?}: support {}, confidence {:.3}",
            m.kind, m.support, m.confidence
        )
        .unwrap();
        dsl.push_str(&rule_to_dsl(&m.rule));
        dsl.push('\n');
    }
    if let Some(out) = args.get(&["o", "out"]) {
        write_atomic(out, &dsl)?;
        writeln!(summary, "wrote DSL to {out}").unwrap();
    } else {
        summary.push('\n');
        summary.push_str(&dsl);
    }
    Ok(summary)
}

fn cmd_fmt(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("fmt: missing -r RULES"))?,
    )?;
    Ok(grepair_core::ruleset_to_dsl(&rules))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(dispatch(&toks(&["help"])).unwrap().contains("usage:"));
        let err = dispatch(&toks(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn full_file_workflow() {
        let dir = tmpdir();
        let dirty = dir.join("dirty.json");
        let clean = dir.join("clean.json");
        let repaired = dir.join("repaired.json");
        let rules = dir.join("rules.grr");
        let mined = dir.join("mined.grr");
        let report = dir.join("report.json");

        // gen with noise.
        let out = dispatch(&toks(&[
            "gen", "kg", "--persons", "300", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
            "--clean", clean.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("errors"), "{out}");

        // stats.
        let out = dispatch(&toks(&["stats", dirty.to_str().unwrap()])).unwrap();
        assert!(out.contains("|V|="), "{out}");

        // mine rules from the clean graph.
        let out = dispatch(&toks(&[
            "mine", "-g", clean.to_str().unwrap(), "-o", mined.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("mined"), "{out}");

        // write the gold rules and check.
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("TOTAL"), "{out}");
        let total: usize = out
            .lines()
            .find(|l| l.starts_with("TOTAL"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(total > 0);

        // repair.
        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", repaired.to_str().unwrap(), "--report", report.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("converged: true"), "{out}");
        assert!(report.exists());

        // re-check: zero violations.
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", repaired.to_str().unwrap(),
        ]))
        .unwrap();
        let total: usize = out
            .lines()
            .find(|l| l.starts_with("TOTAL"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert_eq!(total, 0, "{out}");

        // analyze + fmt on the gold rules.
        let out = dispatch(&toks(&["analyze", "-r", rules.to_str().unwrap()])).unwrap();
        assert!(out.contains("analysed 10 rules"), "{out}");
        let out = dispatch(&toks(&["fmt", "-r", rules.to_str().unwrap()])).unwrap();
        assert!(out.contains("rule add_citizenship"), "{out}");

        // mined rules parse back and can repair too.
        let out = dispatch(&toks(&[
            "repair", "-r", mined.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", repaired.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("applied"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_switch_matches_live_results() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-frozen.json");
        let rules = dir.join("rules-frozen.grr");
        let out_live = dir.join("repaired-live.json");
        let out_frozen = dir.join("repaired-frozen.json");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "200", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();

        // check: identical per-rule counts with and without --frozen.
        let live = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        let frozen = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "--frozen",
        ]))
        .unwrap();
        assert_eq!(live, frozen);

        // repair: identical repaired graphs with and without --frozen.
        dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", out_live.to_str().unwrap(),
        ]))
        .unwrap();
        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", out_frozen.to_str().unwrap(), "--frozen",
        ]))
        .unwrap();
        assert!(out.contains("converged: true"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&out_live).unwrap(),
            std::fs::read_to_string(&out_frozen).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_prints_plans_with_estimates() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-explain.json");
        let rules = dir.join("rules-explain.grr");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "200", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        let out = dispatch(&toks(&[
            "explain", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("statistics: |V|="), "{out}");
        assert!(out.contains("epoch 1"), "{out}");
        assert!(out.contains("recomputed"), "{out}");
        assert!(out.contains("drift 0.0%"), "{out}");
        assert!(out.contains("plan cache:"), "{out}");
        assert!(out.contains("rule add_citizenship"), "{out}");
        assert!(out.contains("estimated cost"), "{out}");
        assert!(
            out.contains("label-index") || out.contains("scan"),
            "{out}"
        );
        assert!(out.contains("extend"), "{out}");
        // A rule whose labels are absent from the graph is called out.
        let ghost = dir.join("ghost.grr");
        std::fs::write(
            &ghost,
            "rule ghost [conflict]\nmatch (x:Ghost)-[haunts]->(y:Ghost)\nrepair delete edge (x)-[haunts]->(y)",
        )
        .unwrap();
        let out = dispatch(&toks(&[
            "explain", "-r", ghost.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("unmatchable"), "{out}");
        // Missing graph source is a usage error.
        assert!(dispatch(&toks(&["explain", "-r", rules.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_reuses_one_planner_across_runs() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-watch.json");
        let rules = dir.join("rules-watch.grr");
        let store_dir = dir.join("watch.store");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "150", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();

        // File-backed watch: run 1 compiles, run 2 runs from cache.
        let out = dispatch(&toks(&[
            "watch", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "--runs", "2",
        ]))
        .unwrap();
        assert!(out.contains("run 1:"), "{out}");
        assert!(out.contains("run 2: 0 repairs"), "{out}");
        let run2 = out.lines().find(|l| l.starts_with("run 2:")).unwrap();
        assert!(run2.contains("0 plans compiled"), "{out}");
        assert!(!run2.contains(" 0 cache hits"), "{out}");

        // Store-backed watch goes through the store's own warm planner.
        dispatch(&toks(&[
            "store", "init", "-d", store_dir.to_str().unwrap(),
            "--from", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        let out = dispatch(&toks(&[
            "watch", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("run 2: 0 repairs"), "{out}");
        assert!(out
            .lines()
            .find(|l| l.starts_with("run 2:"))
            .unwrap()
            .contains("0 plans compiled"), "{out}");

        // Graph source must be exactly one of -g / --store.
        assert!(dispatch(&toks(&["watch", "-r", rules.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn social_gen_and_text_format() {
        let dir = tmpdir();
        let social = dir.join("social.txt");
        let out = dispatch(&toks(&[
            "gen", "social", "--accounts", "100", "-o", social.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("social"), "{out}");
        // .txt graphs load back.
        let out = dispatch(&toks(&["stats", social.to_str().unwrap()])).unwrap();
        assert!(out.contains("|V|="), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_args_are_usage_errors() {
        for cmd in [
            vec!["gen", "kg"],
            vec!["check", "-r", "x.grr"],
            vec!["repair", "-g", "x.json"],
            vec!["analyze"],
            vec!["mine"],
            vec!["fmt"],
            vec!["store"],
            vec!["store", "init"],
            vec!["store", "frobnicate", "-d", "x"],
            vec!["store", "export", "-d", "x"],
            vec!["store", "fsck"],
        ] {
            let err = dispatch(&toks(&cmd)).unwrap_err();
            assert!(err.code == 2 || err.code == 1, "{cmd:?}: {}", err.message);
        }
        // Graph source must be exactly one of -g / --store.
        let dir = tmpdir();
        let rules = dir.join("conflict-rules.grr");
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        let err = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", "a.json", "--store", "d",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
        let err = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", "a.json", "--store", "d",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_workflow_end_to_end() {
        let dir = tmpdir();
        let dirty = dir.join("dirty.json");
        let store_dir = dir.join("kg.store");
        let rules = dir.join("rules.grr");
        let exported = dir.join("exported.json");
        let report = dir.join("report.json");

        dispatch(&toks(&[
            "gen", "kg", "--persons", "150", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();

        // init --from imports the graph as a genesis snapshot.
        let out = dispatch(&toks(&[
            "store", "init", "-d", store_dir.to_str().unwrap(),
            "--from", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("initialized store"), "{out}");
        // Double-init fails.
        assert!(dispatch(&toks(&[
            "store", "init", "-d", store_dir.to_str().unwrap(),
        ]))
        .is_err());

        // check --store sees the same violations as check -g.
        let from_store = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let from_file = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        let totals = |s: &str| -> usize {
            s.lines()
                .find(|l| l.starts_with("TOTAL"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
                .unwrap()
        };
        assert!(totals(&from_store) > 0);
        assert_eq!(totals(&from_store), totals(&from_file));

        // repair --store commits durably and writes the report.
        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
            "--report", report.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("durably committed"), "{out}");
        assert!(out.contains("converged: true"), "{out}");
        assert!(report.exists());

        // Reopen: repairs survived; zero violations.
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(totals(&out), 0, "{out}");

        // status + compact + export round-trip.
        let out = dispatch(&toks(&["store", "status", "-d", store_dir.to_str().unwrap()]))
            .unwrap();
        assert!(out.contains("last_seq"), "{out}");
        let out = dispatch(&toks(&["store", "compact", "-d", store_dir.to_str().unwrap()]))
            .unwrap();
        assert!(out.contains("snapshot at seq"), "{out}");
        dispatch(&toks(&[
            "store", "export", "-d", store_dir.to_str().unwrap(),
            "-o", exported.to_str().unwrap(),
        ]))
        .unwrap();
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", exported.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(totals(&out), 0, "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_store_survives_simulated_crash() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-crash.json");
        let store_dir = dir.join("crash.store");
        let rules = dir.join("rules-crash.grr");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "120", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        dispatch(&toks(&[
            "store", "init", "-d", store_dir.to_str().unwrap(),
            "--from", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap();

        // Crash simulation: torn garbage on the active segment.
        let seg = std::fs::read_dir(&store_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .max()
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0xEE; 9]);
        std::fs::write(&seg, &bytes).unwrap();

        // The store reopens, reports the truncation, and keeps repairs.
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("torn tail"), "{out}");
        assert!(out.lines().any(|l| l.starts_with("TOTAL") && l.contains('0')), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_fsck_and_read_only_degraded_open() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-fsck.json");
        let store_dir = dir.join("fsck.store");
        let rules = dir.join("rules-fsck.grr");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "120", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        dispatch(&toks(&[
            "store", "init", "-d", store_dir.to_str().unwrap(),
            "--from", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap();

        // Healthy store: verdict clean, exit 0, both renderings.
        let out = dispatch(&toks(&["store", "fsck", "-d", store_dir.to_str().unwrap()]))
            .unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("lock: unlocked"), "{out}");
        assert!(out.contains("issues: none"), "{out}");
        let out = dispatch(&toks(&[
            "store", "fsck", "-d", store_dir.to_str().unwrap(), "--format", "json",
        ]))
        .unwrap();
        assert!(out.contains("\"verdict\":\"clean\""), "{out}");
        assert!(out.contains("\"issues\":[]"), "{out}");
        let err = dispatch(&toks(&[
            "store", "fsck", "-d", store_dir.to_str().unwrap(), "--format", "yaml",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);

        // --read-only works on a healthy store too (no lock, no
        // degradation banner).
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(),
            "--store", store_dir.to_str().unwrap(), "--read-only",
        ]))
        .unwrap();
        assert!(out.contains("opened store read-only"), "{out}");
        assert!(!out.contains("DEGRADED"), "{out}");

        // Torn tail (garbage past the last valid frame): still exit 0 —
        // a writable open absorbs this — but the verdict and truncation
        // point are reported.
        let seg = std::fs::read_dir(&store_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .max()
            .unwrap();
        let clean_bytes = std::fs::read(&seg).unwrap();
        let clean_len = clean_bytes.len();
        let mut bytes = clean_bytes.clone();
        bytes.extend_from_slice(&[0xEE; 9]);
        std::fs::write(&seg, &bytes).unwrap();
        let out = dispatch(&toks(&["store", "fsck", "-d", store_dir.to_str().unwrap()]))
            .unwrap();
        assert!(out.contains("torn-tail"), "{out}");
        assert!(
            out.contains(&format!("valid data ends at byte {clean_len}")),
            "{out}"
        );

        // Mid-log damage (valid frames after the corrupt byte): fsck
        // fails with exit 4, a writable open refuses, and --read-only
        // serves the recoverable prefix with a degradation banner. The
        // damaged image is a flipped byte in the first frame followed by
        // an intact, CRC-valid frame — truncating here would silently
        // drop it, which is exactly what the store must refuse to do.
        let header = grepair_store::wal::SEGMENT_HEADER_LEN as usize;
        let mut bytes = clean_bytes.clone();
        bytes[header + 10] ^= 0xFF;
        bytes.extend_from_slice(&clean_bytes[header..]);
        std::fs::write(&seg, &bytes).unwrap();
        let err = dispatch(&toks(&["store", "fsck", "-d", store_dir.to_str().unwrap()]))
            .unwrap_err();
        assert_eq!(err.code, 4);
        assert!(err.message.contains("degraded"), "{}", err.message);
        let err = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "--store", store_dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1);
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(),
            "--store", store_dir.to_str().unwrap(), "--read-only",
        ]))
        .unwrap();
        assert!(out.contains("DEGRADED"), "{out}");
        assert!(out.contains("TOTAL"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_never_leaves_truncated_output() {
        let dir = tmpdir();
        let path = dir.join("out.json");
        // Overwrite an existing file; failure of the rename would leave
        // the old contents, never a mix.
        std::fs::write(&path, "OLD").unwrap();
        write_atomic(path.to_str().unwrap(), "NEW CONTENTS").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "NEW CONTENTS");
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // Writing into a missing directory errors cleanly.
        let bad = dir.join("no-such-dir").join("x.json");
        assert!(write_atomic(bad.to_str().unwrap(), "x").is_err());
        // Special files are written in place, not renamed over: /dev/null
        // must still be a character device afterwards.
        #[cfg(unix)]
        {
            write_atomic("/dev/null", "discard me").unwrap();
            use std::os::unix::fs::FileTypeExt as _;
            let ft = std::fs::metadata("/dev/null").unwrap().file_type();
            assert!(ft.is_char_device(), "/dev/null clobbered: {ft:?}");
        }
        // Symlinked outputs are written *through*, not replaced: the
        // link survives and its target gets the new contents.
        #[cfg(unix)]
        {
            let real = dir.join("real.json");
            let link = dir.join("link.json");
            std::fs::write(&real, "stale").unwrap();
            std::os::unix::fs::symlink(&real, &link).unwrap();
            write_atomic(link.to_str().unwrap(), "via link").unwrap();
            assert!(std::fs::symlink_metadata(&link)
                .unwrap()
                .file_type()
                .is_symlink());
            assert_eq!(std::fs::read_to_string(&real).unwrap(), "via link");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_files_are_io_errors() {
        let err = dispatch(&toks(&["stats", "/nonexistent/graph.json"])).unwrap_err();
        assert_eq!(err.code, 1);
    }

    /// A rule set tripping GR003 (deny by default): the repair never
    /// removes its own match.
    const NOOP_GRR: &str = "rule noop [conflict]
match (x:P)-[r]->(y:P)
repair set x.seen = true
";

    #[test]
    fn lint_subcommand_text_json_and_policy() {
        let dir = tmpdir();
        let bad = dir.join("bad.grr");
        std::fs::write(&bad, NOOP_GRR).unwrap();

        // Deny-level finding: exit code 3, rustc-style rendering.
        let err = dispatch(&toks(&["lint", "-r", bad.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("error[GR003]"), "{}", err.message);
        assert!(err.message.contains("rule `noop`"), "{}", err.message);
        assert!(err.message.contains("bad.grr:1:1"), "{}", err.message);

        // Machine output carries the same verdict.
        let err = dispatch(&toks(&[
            "lint", "-r", bad.to_str().unwrap(), "--format", "json",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("\"code\": \"GR003\""), "{}", err.message);
        assert!(err.message.contains("\"severity\": \"deny\""), "{}", err.message);

        // --allow downgrades; lint exits cleanly. Both the code and the
        // lint name are accepted.
        let out = dispatch(&toks(&[
            "lint", "-r", bad.to_str().unwrap(), "--allow", "GR003",
        ]))
        .unwrap();
        assert!(!out.contains("error[GR003]"), "{out}");
        dispatch(&toks(&[
            "lint", "-r", bad.to_str().unwrap(), "--allow", "ineffective-rule",
        ]))
        .unwrap();
        // Last flag wins: allow-then-deny still denies.
        let err = dispatch(&toks(&[
            "lint", "-r", bad.to_str().unwrap(),
            "--allow", "GR003", "--deny", "GR003",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3);

        // --deny escalates a default-warn lint.
        let loose = dir.join("loose.grr");
        std::fs::write(
            &loose,
            "rule loose [conflict]\nmatch (x:P)-[r]->(y:P), (z:Q)\nrepair delete edge (x)-[r]->(y)\n",
        )
        .unwrap();
        dispatch(&toks(&["lint", "-r", loose.to_str().unwrap()])).unwrap();
        let err = dispatch(&toks(&[
            "lint", "-r", loose.to_str().unwrap(), "--deny", "GR006",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("error[GR006]"), "{}", err.message);

        // Unknown codes and formats are usage errors.
        let err = dispatch(&toks(&[
            "lint", "-r", bad.to_str().unwrap(), "--deny", "GR999",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
        let err = dispatch(&toks(&[
            "lint", "-r", bad.to_str().unwrap(), "--format", "yaml",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(dispatch(&toks(&["lint"])).is_err());

        // The gold catalog lints clean at deny level.
        let gold = dir.join("gold.grr");
        std::fs::write(&gold, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        let out = dispatch(&toks(&["lint", "-r", gold.to_str().unwrap()])).unwrap();
        assert!(!out.contains("error["), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_preflight_refuses_deny_level_rule_sets() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-lint.json");
        let bad = dir.join("bad-preflight.grr");
        let gold = dir.join("gold-preflight.grr");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "100", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&bad, NOOP_GRR).unwrap();
        std::fs::write(&gold, grepair_gen::catalog::GOLD_KG_DSL).unwrap();

        // check/repair with --lint refuse the deny-level set before
        // touching the graph.
        let err = dispatch(&toks(&[
            "check", "--lint", "-r", bad.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("refusing deny-level rule set"), "{}", err.message);
        assert!(err.message.contains("error[GR003]"), "{}", err.message);
        let err = dispatch(&toks(&[
            "repair", "--lint", "-r", bad.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3);

        // An --allow override lets the run proceed.
        let out = dispatch(&toks(&[
            "check", "--lint", "--allow", "GR003",
            "-r", bad.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("TOTAL"), "{out}");

        // Clean sets pass the pre-flight untouched.
        let out = dispatch(&toks(&[
            "check", "--lint", "-r", gold.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("TOTAL"), "{out}");
        // Without --lint the deny-level set still runs (opt-in gate).
        let out = dispatch(&toks(&[
            "check", "-r", bad.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("TOTAL"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Typed mirror of the Chrome trace file schema — parsing into it *is*
    /// the schema check (the derive rejects missing required fields).
    #[derive(serde::Deserialize)]
    #[allow(non_snake_case)]
    struct TraceFile {
        traceEvents: Vec<TraceRow>,
    }

    #[derive(serde::Deserialize)]
    struct TraceRow {
        name: String,
        cat: String,
        ph: char,
        ts: f64,
        /// Complete (`X`) spans carry a duration…
        dur: Option<f64>,
        /// …instants carry a scope instead.
        s: Option<String>,
        pid: u64,
        tid: u64,
    }

    /// One combined test for `--trace` and `metrics`: tracing state is
    /// process-global, so splitting this across tests would let the
    /// parallel test harness interleave enable/disable calls.
    #[test]
    fn trace_export_and_metrics_snapshot() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-trace.json");
        let repaired = dir.join("repaired-trace.json");
        let rules = dir.join("rules-trace.grr");
        let trace = dir.join("trace.json");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "200", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();

        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", repaired.to_str().unwrap(), "--trace", trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("converged: true"), "{out}");
        assert!(out.contains("wrote trace"), "{out}");

        // The exported file is valid Chrome trace format.
        let text = std::fs::read_to_string(&trace).unwrap();
        let parsed: TraceFile = serde_json::from_str(&text).expect("trace must parse");
        assert!(!parsed.traceEvents.is_empty());
        let names: Vec<&str> = parsed.traceEvents.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"engine.repair"), "{names:?}");
        assert!(names.contains(&"match.find_all"), "{names:?}");
        for e in &parsed.traceEvents {
            assert!(!e.cat.is_empty());
            assert_eq!(e.pid, 1);
            assert!(e.ts >= 0.0, "negative ts on tid {}", e.tid);
            match e.ph {
                'X' => assert!(e.dur.is_some(), "complete span {} missing dur", e.name),
                'i' => assert_eq!(e.s.as_deref(), Some("t"), "instant {} missing scope", e.name),
                other => panic!("unexpected phase {other:?}"),
            }
        }

        // metrics with a run (-r/-g) produces a populated text snapshot…
        let out = dispatch(&toks(&[
            "metrics", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("counter   engine.rounds"), "{out}");
        assert!(out.contains("histogram match.find_all_ns"), "{out}");

        // …and the JSON form carries the stable schema.
        let out = dispatch(&toks(&["metrics", "--format", "json"])).unwrap();
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"events\""] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert!(out.contains("\"engine.rounds\""), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Write a dirty KG and the gold rules into `dir`; returns their
    /// paths.
    fn guardrail_fixture(dir: &Path) -> (std::path::PathBuf, std::path::PathBuf) {
        let dirty = dir.join("guardrail-dirty.json");
        let rules = dir.join("guardrail-rules.grr");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "300", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        (dirty, rules)
    }

    #[test]
    fn repair_max_ops_trips_with_exit_5() {
        let dir = tmpdir();
        let (dirty, rules) = guardrail_fixture(&dir);
        let out_path = dir.join("partial.json");
        let err = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", out_path.to_str().unwrap(), "--max-ops", "1",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 5, "{}", err.message);
        assert!(err.message.contains("outcome: op-budget"), "{}", err.message);
        assert!(err.message.contains("stopped:"), "{}", err.message);
        // The partial (committed-prefix) graph was still exported.
        assert!(out_path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_max_ops_caps_matches_with_exit_5() {
        let dir = tmpdir();
        let (dirty, rules) = guardrail_fixture(&dir);
        let err = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "--max-ops", "1",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 5, "{}", err.message);
        assert!(err.message.contains("lower bound"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_budget_flags_are_usage_errors() {
        let dir = tmpdir();
        let (dirty, rules) = guardrail_fixture(&dir);
        for flags in [["--timeout", "abc"], ["--timeout", "0"], ["--max-ops", "0"]] {
            let err = dispatch(&toks(&[
                "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
                "-o", "/dev/null", flags[0], flags[1],
            ]))
            .unwrap_err();
            assert_eq!(err.code, 2, "{flags:?}: {}", err.message);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancel_registry_flips_registered_tokens() {
        let budget = grepair_obs::Budget::unlimited();
        register_cancel_token(budget.token());
        cancel_active();
        assert_eq!(
            budget.checkpoint(),
            Some(grepair_obs::TripReason::Cancelled)
        );
    }

    #[test]
    fn failed_trace_export_warns_but_never_fails_the_repair() {
        let dir = tmpdir();
        let (dirty, rules) = guardrail_fixture(&dir);
        // A directory as the trace target makes the export fail; the
        // repair itself must still succeed (exit 0).
        let trace_target = dir.join("not-a-file");
        std::fs::create_dir_all(&trace_target).unwrap();
        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", dir.join("repaired.json").to_str().unwrap(),
            "--trace", trace_target.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("converged: true"), "{out}");
        assert!(out.contains("warning: trace export failed"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_on_faulty_fs_cleans_up_and_recovers() {
        use grepair_store::{FaultOp, FaultyFs, InjectedError};
        let vfs = FaultyFs::new();
        let target = Path::new("/out/result.json");
        vfs.create_dir_all(Path::new("/out")).unwrap();

        // Fail each step of the atomic write in turn; the target must
        // never hold partial content and no temp droppings may remain.
        for op in [FaultOp::Create, FaultOp::Write, FaultOp::Sync, FaultOp::Rename] {
            vfs.inject(op, 0, InjectedError::Enospc);
            assert!(
                write_atomic_on(&vfs, target, "fresh contents").is_err(),
                "{op:?} fault must surface"
            );
            for (path, _) in vfs.durable_image() {
                assert!(
                    !path.to_string_lossy().contains(".tmp"),
                    "temp dropping survived a {op:?} fault: {}",
                    path.display()
                );
            }
        }

        // Fault-free retry over the same backend succeeds.
        write_atomic_on(&vfs, target, "fresh contents").unwrap();
        assert_eq!(vfs.read(target).unwrap(), b"fresh contents");
    }
}
