//! # grepair-cli
//!
//! Command-line workflows over the `grepair` stack. All command logic
//! lives here (the binary is a thin wrapper) so it is unit-testable.
//!
//! ```text
//! grepair gen kg --persons 2000 --noise 0.1 -o dirty.json --clean clean.json
//! grepair stats dirty.json
//! grepair check -r rules.grr -g dirty.json
//! grepair repair -r rules.grr -g dirty.json -o repaired.json
//! grepair analyze -r rules.grr
//! grepair mine -g clean.json -o mined.grr
//! grepair fmt -r rules.grr
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use grepair_core::{
    analyze, parse_rules, rule_to_dsl, EngineConfig, RepairEngine, RuleSet,
};
use grepair_gen::{
    generate_kg, generate_social, inject_kg_noise, KgConfig, NoiseConfig, SocialConfig,
};
use grepair_graph::{Graph, GraphDoc, GraphStats};
use grepair_mine::{mine_all, MinerConfig};
use std::fmt::Write as _;

/// CLI error: message + suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }
    fn io(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

type CliResult = Result<String, CliError>;

/// Minimal flag parser: `--key value` pairs plus positionals.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parse a raw token list. Tokens starting with `--` take the next
    /// token as value unless they are known boolean switches.
    pub fn parse(tokens: &[String]) -> Self {
        const SWITCHES: &[&str] = &["--naive", "--quick", "--parallel", "--frozen"];
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                if SWITCHES.contains(&t.as_str()) {
                    out.switches.push(name.to_owned());
                    i += 1;
                } else if i + 1 < tokens.len() {
                    out.flags.push((name.to_owned(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    out.switches.push(name.to_owned());
                    i += 1;
                }
            } else if let Some(name) = t.strip_prefix('-') {
                if i + 1 < tokens.len() {
                    out.flags.push((name.to_owned(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    out.switches.push(name.to_owned());
                    i += 1;
                }
            } else {
                out.positional.push(t.clone());
                i += 1;
            }
        }
        out
    }

    fn get(&self, names: &[&str]) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| names.contains(&k.as_str()))
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, names: &[&str], default: usize) -> Result<usize, CliError> {
        match self.get(names) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad integer for {names:?}: {v}"))),
        }
    }

    fn get_f64(&self, names: &[&str], default: f64) -> Result<f64, CliError> {
        match self.get(names) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad number for {names:?}: {v}"))),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_graph(path: &str) -> Result<Graph, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let doc = if path.ends_with(".txt") {
        GraphDoc::from_text(&text)
    } else {
        GraphDoc::from_json(&text)
    }
    .map_err(|e| CliError::io(format!("cannot parse {path}: {e}")))?;
    Graph::from_doc(&doc).map_err(|e| CliError::io(format!("cannot build graph: {e}")))
}

fn save_graph(g: &Graph, path: &str) -> Result<(), CliError> {
    let doc = g.to_doc();
    let text = if path.ends_with(".txt") {
        doc.to_text()
    } else {
        doc.to_json()
    };
    std::fs::write(path, text).map_err(|e| CliError::io(format!("cannot write {path}: {e}")))
}

fn load_rules(path: &str) -> Result<RuleSet, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    if path.ends_with(".json") {
        RuleSet::from_json(&text).map_err(|e| CliError::io(format!("bad rule json: {e}")))
    } else {
        let rules =
            parse_rules(&text).map_err(|e| CliError::io(format!("bad rule DSL: {e}")))?;
        RuleSet::new(path.to_owned(), rules)
            .map_err(|e| CliError::io(format!("invalid rule set: {e}")))
    }
}

/// Top-level usage text.
pub const USAGE: &str = "grepair — rule-based graph repairing

usage: grepair <command> [args]

commands:
  gen kg       --persons N [--seed S] [--noise RATE] -o OUT [--clean C] [--ledger L]
  gen social   --accounts N [--seed S] -o OUT
  stats        GRAPH
  check        -r RULES -g GRAPH [--frozen]
  repair       -r RULES -g GRAPH -o OUT [--naive] [--frozen] [--report R]
  analyze      -r RULES
  mine         -g GRAPH [-o RULES.grr] [--min-support N] [--min-confidence C]
  fmt          -r RULES

Graph files are .json (GraphDoc) or .txt (fixture format); rule files are
.grr DSL or .json. --frozen runs full scans over a compacted CSR snapshot
of the graph (faster on large graphs, identical results; --naive enables
it by default).";

/// Dispatch a command line (without the program name). Returns the text
/// to print on stdout.
pub fn dispatch(tokens: &[String]) -> CliResult {
    let Some(cmd) = tokens.first().map(String::as_str) else {
        return Err(CliError::usage(USAGE));
    };
    let rest = &tokens[1..];
    match cmd {
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "check" => cmd_check(rest),
        "repair" => cmd_repair(rest),
        "analyze" => cmd_analyze(rest),
        "mine" => cmd_mine(rest),
        "fmt" => cmd_fmt(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

fn cmd_gen(tokens: &[String]) -> CliResult {
    let Some(kind) = tokens.first().map(String::as_str) else {
        return Err(CliError::usage("gen: expected 'kg' or 'social'"));
    };
    let args = Args::parse(&tokens[1..]);
    let out = args
        .get(&["o", "out"])
        .ok_or_else(|| CliError::usage("gen: missing -o OUT"))?
        .to_owned();
    match kind {
        "kg" => {
            let persons = args.get_usize(&["persons"], 1000)?;
            let seed = args.get_usize(&["seed"], 42)? as u64;
            let noise = args.get_f64(&["noise"], 0.0)?;
            let (clean, refs) = generate_kg(&KgConfig {
                seed,
                ..KgConfig::with_persons(persons)
            });
            let mut report = String::new();
            if noise > 0.0 {
                let mut dirty = clean.clone();
                let truth = inject_kg_noise(
                    &mut dirty,
                    &refs,
                    &NoiseConfig {
                        rate: noise,
                        seed,
                        ..NoiseConfig::default()
                    },
                );
                save_graph(&dirty, &out)?;
                if let Some(clean_path) = args.get(&["clean"]) {
                    save_graph(&clean, clean_path)?;
                }
                if let Some(ledger_path) = args.get(&["ledger"]) {
                    let json = serde_json::to_string_pretty(&truth.errors)
                        .expect("ledger serializes");
                    std::fs::write(ledger_path, json)
                        .map_err(|e| CliError::io(e.to_string()))?;
                }
                let (i, c, r) = truth.class_counts();
                writeln!(
                    report,
                    "wrote dirty KG to {out} ({} errors: {i} incompleteness, {c} conflict, {r} redundancy)",
                    truth.len()
                )
                .unwrap();
            } else {
                save_graph(&clean, &out)?;
                writeln!(report, "wrote clean KG to {out}").unwrap();
            }
            write!(report, "{}", GraphStats::compute(&clean)).unwrap();
            Ok(report)
        }
        "social" => {
            let accounts = args.get_usize(&["accounts"], 1000)?;
            let seed = args.get_usize(&["seed"], 99)? as u64;
            let (g, _) = generate_social(&SocialConfig {
                accounts,
                seed,
                ..SocialConfig::default()
            });
            save_graph(&g, &out)?;
            Ok(format!(
                "wrote social graph to {out}\n{}",
                GraphStats::compute(&g)
            ))
        }
        other => Err(CliError::usage(format!("gen: unknown kind {other:?}"))),
    }
}

fn cmd_stats(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("stats: expected GRAPH path"))?;
    let g = load_graph(path)?;
    Ok(format!("{path}: {}", GraphStats::compute(&g)))
}

fn cmd_check(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("check: missing -r RULES"))?,
    )?;
    let g = load_graph(
        args.get(&["g", "graph"])
            .ok_or_else(|| CliError::usage("check: missing -g GRAPH"))?,
    )?;
    let counts: Vec<usize> = if args.has("frozen") {
        let frozen = grepair_graph::FrozenGraph::freeze(&g);
        let matcher = grepair_match::Matcher::new(&frozen);
        rules.rules.iter().map(|r| matcher.count(&r.pattern)).collect()
    } else {
        let matcher = grepair_match::Matcher::new(&g);
        rules.rules.iter().map(|r| matcher.count(&r.pattern)).collect()
    };
    let mut out = String::new();
    let mut total = 0usize;
    for (r, n) in rules.rules.iter().zip(counts) {
        total += n;
        writeln!(out, "{:<40} {:>6}", r.name, n).unwrap();
    }
    writeln!(out, "{:<40} {:>6}", "TOTAL", total).unwrap();
    Ok(out)
}

fn cmd_repair(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("repair: missing -r RULES"))?,
    )?;
    let mut g = load_graph(
        args.get(&["g", "graph"])
            .ok_or_else(|| CliError::usage("repair: missing -g GRAPH"))?,
    )?;
    let out_path = args
        .get(&["o", "out"])
        .ok_or_else(|| CliError::usage("repair: missing -o OUT"))?;
    let mut config = if args.has("naive") {
        EngineConfig::naive_with_indexes()
    } else {
        EngineConfig::default()
    };
    if args.has("frozen") {
        config.freeze_scans = true;
    }
    let report = RepairEngine::new(config).repair(&mut g, &rules.rules);
    save_graph(&g, out_path)?;
    if let Some(rp) = args.get(&["report"]) {
        std::fs::write(rp, serde_json::to_string_pretty(&report).unwrap())
            .map_err(|e| CliError::io(e.to_string()))?;
    }
    let mut out = String::new();
    writeln!(
        out,
        "applied {} repairs in {:?} (converged: {}, residual: {})",
        report.repairs_applied, report.wall, report.converged, report.violations_remaining
    )
    .unwrap();
    for s in report.per_rule.iter().filter(|s| s.repairs_applied > 0) {
        writeln!(out, "  {:<40} {:>6}", s.name, s.repairs_applied).unwrap();
    }
    write!(out, "wrote repaired graph to {out_path}").unwrap();
    Ok(out)
}

fn cmd_analyze(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("analyze: missing -r RULES"))?,
    )?;
    let report = analyze(&rules.rules);
    let mut out = String::new();
    writeln!(out, "analysed {} rules in {}µs", rules.len(), report.micros).unwrap();
    for (r, e) in rules.rules.iter().zip(&report.effectiveness) {
        writeln!(out, "  {:<40} {:?}", r.name, e).unwrap();
    }
    writeln!(out, "terminating: {}", report.terminating).unwrap();
    for c in &report.cycles {
        let names: Vec<&str> = c.iter().map(|&i| rules.rules[i].name.as_str()).collect();
        writeln!(out, "  cycle: {}", names.join(" → ")).unwrap();
    }
    writeln!(out, "conflicts: {}", report.conflicts.len()).unwrap();
    for c in &report.conflicts {
        writeln!(
            out,
            "  {} ↔ {} [{}] {}",
            rules.rules[c.a].name, rules.rules[c.b].name, c.kind, c.detail
        )
        .unwrap();
    }
    writeln!(out, "implications: {}", report.implications.len()).unwrap();
    for i in &report.implications {
        writeln!(
            out,
            "  {} ⊑ {}",
            rules.rules[i.redundant].name, rules.rules[i.by].name
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_mine(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let g = load_graph(
        args.get(&["g", "graph"])
            .ok_or_else(|| CliError::usage("mine: missing -g GRAPH"))?,
    )?;
    let cfg = MinerConfig {
        min_support: args.get_usize(&["min-support"], 20)?,
        min_confidence: args.get_f64(&["min-confidence"], 0.9)?,
        ..MinerConfig::default()
    };
    let mined = mine_all(&g, &cfg);
    let mut dsl = String::new();
    let mut summary = String::new();
    writeln!(summary, "mined {} rules:", mined.len()).unwrap();
    for m in &mined {
        writeln!(
            summary,
            "  {:<55} {:?} support {:>5} confidence {:.3}",
            m.rule.name, m.kind, m.support, m.confidence
        )
        .unwrap();
        writeln!(
            dsl,
            "# {:?}: support {}, confidence {:.3}",
            m.kind, m.support, m.confidence
        )
        .unwrap();
        dsl.push_str(&rule_to_dsl(&m.rule));
        dsl.push('\n');
    }
    if let Some(out) = args.get(&["o", "out"]) {
        std::fs::write(out, &dsl).map_err(|e| CliError::io(e.to_string()))?;
        writeln!(summary, "wrote DSL to {out}").unwrap();
    } else {
        summary.push('\n');
        summary.push_str(&dsl);
    }
    Ok(summary)
}

fn cmd_fmt(tokens: &[String]) -> CliResult {
    let args = Args::parse(tokens);
    let rules = load_rules(
        args.get(&["r", "rules"])
            .ok_or_else(|| CliError::usage("fmt: missing -r RULES"))?,
    )?;
    Ok(grepair_core::ruleset_to_dsl(&rules))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grepair-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(dispatch(&toks(&["help"])).unwrap().contains("usage:"));
        let err = dispatch(&toks(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn full_file_workflow() {
        let dir = tmpdir();
        let dirty = dir.join("dirty.json");
        let clean = dir.join("clean.json");
        let repaired = dir.join("repaired.json");
        let rules = dir.join("rules.grr");
        let mined = dir.join("mined.grr");
        let report = dir.join("report.json");

        // gen with noise.
        let out = dispatch(&toks(&[
            "gen", "kg", "--persons", "300", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
            "--clean", clean.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("errors"), "{out}");

        // stats.
        let out = dispatch(&toks(&["stats", dirty.to_str().unwrap()])).unwrap();
        assert!(out.contains("|V|="), "{out}");

        // mine rules from the clean graph.
        let out = dispatch(&toks(&[
            "mine", "-g", clean.to_str().unwrap(), "-o", mined.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("mined"), "{out}");

        // write the gold rules and check.
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("TOTAL"), "{out}");
        let total: usize = out
            .lines()
            .find(|l| l.starts_with("TOTAL"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(total > 0);

        // repair.
        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", repaired.to_str().unwrap(), "--report", report.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("converged: true"), "{out}");
        assert!(report.exists());

        // re-check: zero violations.
        let out = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", repaired.to_str().unwrap(),
        ]))
        .unwrap();
        let total: usize = out
            .lines()
            .find(|l| l.starts_with("TOTAL"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert_eq!(total, 0, "{out}");

        // analyze + fmt on the gold rules.
        let out = dispatch(&toks(&["analyze", "-r", rules.to_str().unwrap()])).unwrap();
        assert!(out.contains("analysed 10 rules"), "{out}");
        let out = dispatch(&toks(&["fmt", "-r", rules.to_str().unwrap()])).unwrap();
        assert!(out.contains("rule add_citizenship"), "{out}");

        // mined rules parse back and can repair too.
        let out = dispatch(&toks(&[
            "repair", "-r", mined.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", repaired.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("applied"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_switch_matches_live_results() {
        let dir = tmpdir();
        let dirty = dir.join("dirty-frozen.json");
        let rules = dir.join("rules-frozen.grr");
        let out_live = dir.join("repaired-live.json");
        let out_frozen = dir.join("repaired-frozen.json");
        dispatch(&toks(&[
            "gen", "kg", "--persons", "200", "--noise", "0.1",
            "-o", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&rules, grepair_gen::catalog::GOLD_KG_DSL).unwrap();

        // check: identical per-rule counts with and without --frozen.
        let live = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
        ]))
        .unwrap();
        let frozen = dispatch(&toks(&[
            "check", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "--frozen",
        ]))
        .unwrap();
        assert_eq!(live, frozen);

        // repair: identical repaired graphs with and without --frozen.
        dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", out_live.to_str().unwrap(),
        ]))
        .unwrap();
        let out = dispatch(&toks(&[
            "repair", "-r", rules.to_str().unwrap(), "-g", dirty.to_str().unwrap(),
            "-o", out_frozen.to_str().unwrap(), "--frozen",
        ]))
        .unwrap();
        assert!(out.contains("converged: true"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&out_live).unwrap(),
            std::fs::read_to_string(&out_frozen).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn social_gen_and_text_format() {
        let dir = tmpdir();
        let social = dir.join("social.txt");
        let out = dispatch(&toks(&[
            "gen", "social", "--accounts", "100", "-o", social.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("social"), "{out}");
        // .txt graphs load back.
        let out = dispatch(&toks(&["stats", social.to_str().unwrap()])).unwrap();
        assert!(out.contains("|V|="), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_args_are_usage_errors() {
        for cmd in [
            vec!["gen", "kg"],
            vec!["check", "-r", "x.grr"],
            vec!["repair", "-g", "x.json"],
            vec!["analyze"],
            vec!["mine"],
            vec!["fmt"],
        ] {
            let err = dispatch(&toks(&cmd)).unwrap_err();
            assert!(err.code == 2 || err.code == 1, "{cmd:?}: {}", err.message);
        }
    }

    #[test]
    fn bad_files_are_io_errors() {
        let err = dispatch(&toks(&["stats", "/nonexistent/graph.json"])).unwrap_err();
        assert_eq!(err.code, 1);
    }
}
