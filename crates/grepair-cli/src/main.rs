//! `grepair` binary: thin wrapper over [`grepair_cli::dispatch`].

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match grepair_cli::dispatch(&tokens) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
