//! `grepair` binary: thin wrapper over [`grepair_cli::dispatch`].

fn main() {
    // Graceful shutdown: the first ^C flips every active budget's
    // cancel token — the engine finishes its round, commits, and the
    // command exits 130 with a partial report. A second ^C hard-exits.
    let _ = ctrlc::set_handler(|| {
        eprintln!("interrupt: stopping at the next round boundary (^C again to abort)");
        grepair_cli::cancel_active();
    });
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match grepair_cli::dispatch(&tokens) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
