//! # grepair-gen
//!
//! Data substrate for the `grepair` evaluation: synthetic graph
//! generators, seeded noise injection with an exact ground-truth ledger,
//! and the curated GRR catalogs.
//!
//! These replace the artifacts this reproduction cannot ship — real KG
//! dumps and manually annotated error sets — while exercising the same
//! code paths (label/value indexes, matching, all seven repair
//! operations); see DESIGN.md §2 for the substitution argument.
//!
//! - [`kg`] — clean knowledge-graph generator (Person/City/Country/
//!   Company schema, power-law social layer).
//! - [`noise`] — three-class error injection repairable by the gold rules.
//! - [`social`] — born-dirty social-network generator.
//! - [`catalog`] — gold rule catalogs + synthetic rule-set generator.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod kg;
pub mod noise;
pub mod social;

pub use catalog::{gold_kg_rules, social_rules, synthetic_rules};
pub use kg::{generate_kg, KgConfig, KgRefs};
pub use noise::{inject_kg_noise, ErrorClass, GroundTruth, InjectedError, NoiseConfig};
pub use social::{generate_social, SocialConfig};
