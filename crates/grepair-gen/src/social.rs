//! Synthetic social-network generator with built-in dirt.
//!
//! Unlike the KG pipeline (clean generation + separate noise pass), the
//! social generator produces an *already dirty* follower graph — duplicate
//! accounts, flagged bots, self-follows, missing display names — matching
//! how entity-resolution datasets arrive in practice. Used by the
//! `social_dedup` example and the T1 dataset table.

use grepair_graph::{Graph, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SocialConfig {
    /// Number of genuine accounts.
    pub accounts: usize,
    /// Mean follows per account (preferential attachment).
    pub follows_per_account: f64,
    /// Fraction of accounts duplicated (same handle, fresh node).
    pub duplicate_fraction: f64,
    /// Fraction of accounts flagged as bots.
    pub bot_fraction: f64,
    /// Fraction of accounts with a self-follow glitch.
    pub self_follow_fraction: f64,
    /// Fraction of accounts missing their display name.
    pub missing_name_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        Self {
            accounts: 1000,
            follows_per_account: 8.0,
            duplicate_fraction: 0.05,
            bot_fraction: 0.02,
            self_follow_fraction: 0.01,
            missing_name_fraction: 0.1,
            seed: 99,
        }
    }
}

/// Generate the (dirty) social graph; returns the graph and the genuine
/// account nodes.
pub fn generate_social(cfg: &SocialConfig) -> (Graph, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let account = g.label("Account");
    let follows = g.label("follows");
    let handle_k = g.attr_key("handle");
    let display_k = g.attr_key("displayName");
    let flagged_k = g.attr_key("flagged");

    let mut accounts = Vec::with_capacity(cfg.accounts);
    for i in 0..cfg.accounts {
        let mut attrs = vec![(handle_k, Value::Str(format!("@user{i}")))];
        if !rng.gen_bool(cfg.missing_name_fraction) {
            attrs.push((display_k, Value::Str(format!("User {i}"))));
        }
        if rng.gen_bool(cfg.bot_fraction) {
            attrs.push((flagged_k, Value::Bool(true)));
        }
        accounts.push(g.add_node_with_attrs(account, attrs));
    }

    // Preferential-attachment follow graph.
    let mut pool: Vec<NodeId> = accounts.iter().copied().take(2).collect();
    for &a in &accounts {
        let k = (cfg.follows_per_account * rng.gen_range(0.25..1.75)) as usize;
        for _ in 0..k {
            let t = if rng.gen_bool(0.75) && !pool.is_empty() {
                pool[rng.gen_range(0..pool.len())]
            } else {
                accounts[rng.gen_range(0..accounts.len())]
            };
            if t == a || g.has_edge_labeled(a, t, follows) {
                continue;
            }
            g.add_edge(a, t, follows).unwrap();
            pool.push(t);
        }
        if rng.gen_bool(cfg.self_follow_fraction) {
            let _ = g.add_edge(a, a, follows);
        }
    }

    // Duplicates: same handle, partial follow overlap.
    let dup_count = (cfg.accounts as f64 * cfg.duplicate_fraction) as usize;
    for d in 0..dup_count {
        let orig = accounts[rng.gen_range(0..accounts.len())];
        let Some(handle) = g.attr(orig, handle_k).cloned() else {
            continue;
        };
        let clone = g.add_node_with_attrs(account, vec![(handle_k, handle)]);
        let out: Vec<NodeId> = g
            .out_edges(orig)
            .filter_map(|e| g.edge(e).ok())
            .map(|er| er.dst)
            .collect();
        for t in out {
            if rng.gen_bool(0.5) && t != clone {
                let _ = g.add_edge(clone, t, follows);
            }
        }
        let _ = d;
    }
    (g, accounts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::social_rules;
    use grepair_core::RepairEngine;

    #[test]
    fn generation_deterministic_and_dirty() {
        let cfg = SocialConfig {
            accounts: 300,
            ..SocialConfig::default()
        };
        let (g1, _) = generate_social(&cfg);
        let (g2, _) = generate_social(&cfg);
        assert_eq!(g1.to_doc(), g2.to_doc());

        let rules = social_rules();
        let engine = RepairEngine::default();
        assert!(
            engine.count_violations(&g1, &rules.rules) > 0,
            "social graph must be born dirty"
        );
    }

    #[test]
    fn social_rules_clean_it_up() {
        let (mut g, _) = generate_social(&SocialConfig {
            accounts: 300,
            ..SocialConfig::default()
        });
        let rules = social_rules();
        let report = RepairEngine::default().repair(&mut g, &rules.rules);
        assert!(
            report.converged,
            "residual violations: {}",
            report.violations_remaining
        );
        g.check_invariants().unwrap();
        // No duplicate handles remain.
        let handle_k = g.try_attr_key("handle").unwrap();
        for n in g.nodes() {
            if let Some(h) = g.attr(n, handle_k) {
                assert_eq!(g.count_nodes_with_attr(handle_k, h), 1, "handle {h}");
            }
        }
    }
}
