//! Curated rule catalogs (the "gold" GRR sets) and synthetic rule
//! generation for the |Σ| scaling sweeps.

use grepair_core::RuleSet;

/// The gold GRR catalog for the knowledge-graph domain.
///
/// Covers all three inconsistency classes and all seven repair operations;
/// [`crate::kg::generate_kg`] produces graphs satisfying every rule, and
/// [`crate::noise`] injects exactly the violations these rules repair.
pub fn gold_kg_rules() -> RuleSet {
    RuleSet::from_dsl("kg-gold", GOLD_KG_DSL).expect("gold catalog must parse")
}

/// DSL source of the gold KG catalog (exposed for documentation tests).
pub const GOLD_KG_DSL: &str = r#"
# ——— incompleteness ———————————————————————————————————————————————

# Living in a city of a country implies citizenship.
rule add_citizenship [incompleteness]
match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
where not (x)-[citizenOf]->(k)
repair insert edge (x)-[citizenOf]->(k)

# Marriage is symmetric; restore the missing back edge.
rule symmetrize_marriage [incompleteness]
match (x:Person)-[marriedTo]->(y:Person)
where not (y)-[marriedTo]->(x)
repair insert edge (y)-[marriedTo]->(x)

# The denormalised Person.country attribute must exist…
rule fill_country_attr [incompleteness]
match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
where missing(x.country), has(k.name)
repair set x.country = k.name

# ——— conflicts ————————————————————————————————————————————————————

# …and must agree with the country of the person's city.
rule fix_country_attr [conflict]
match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
where x.country != k.name
repair set x.country = k.name

# Nobody is married to themselves.
rule no_self_marriage [conflict]
match (x:Person)-[marriedTo]->(x)
repair delete edge (x)-[marriedTo]->(x)

# Nobody knows themselves.
rule no_self_knows [conflict]
match (x:Person)-[knows]->(x)
repair delete edge (x)-[knows]->(x)

# An unreciprocated marriage edge beside a reciprocated one is spurious
# (bigamy conflict) — more specific than symmetrize_marriage, hence the
# higher priority; cost arbitration plus priority lets deletion win where
# both rules match.
rule fix_bigamy [conflict] priority 5
match (x:Person)-[marriedTo]->(y:Person)-[marriedTo]->(x), (x)-[marriedTo]->(z:Person)
where not (z)-[marriedTo]->(x)
repair delete edge (x)-[marriedTo]->(z)

# livesIn must target a City; a livesIn edge into a Country is a mistyped
# citizenship.
rule fix_mistyped_citizenship [conflict]
match (x:Person)-[livesIn]->(k:Country)
where not (x)-[citizenOf]->(k)
repair relabel edge (x)-[livesIn]->(k) to citizenOf

# If the citizenship already exists, the mistyped edge is redundant.
rule drop_mistyped_citizenship [conflict]
match (x:Person)-[livesIn]->(k:Country), (x)-[citizenOf]->(k)
repair delete edge (x)-[livesIn]->(k)

# ——— redundancy ———————————————————————————————————————————————————

# The social-security number is a key: equal ssn ⇒ same person.
rule dedup_person [redundancy]
match (x:Person), (y:Person)
where x.ssn == y.ssn
repair merge y into x
"#;

/// Gold rules for the social-network domain (dedup-centric).
pub fn social_rules() -> RuleSet {
    RuleSet::from_dsl("social-gold", SOCIAL_DSL).expect("social catalog must parse")
}

/// DSL source of the social catalog.
pub const SOCIAL_DSL: &str = r#"
rule dedup_account [redundancy]
match (x:Account), (y:Account)
where x.handle == y.handle
repair merge y into x

rule no_self_follow [conflict]
match (x:Account)-[follows]->(x)
repair delete edge (x)-[follows]->(x)

rule bot_purge [conflict] priority 3
match (x:Account)
where x.flagged == true
repair delete node x

rule backfill_display_name [incompleteness]
match (x:Account)
where missing(x.displayName), has(x.handle)
repair set x.displayName = x.handle
"#;

/// Generate `n` synthetic rules for the rule-count scaling sweep (F4).
///
/// The rules are attribute-guarded patterns over the KG's dense
/// `Person -knows-> Person` layer: each rule forces a full candidate scan
/// (matching cost) but fires rarely, which isolates *matching* scaling
/// from *repairing* scaling — mirroring real curated rule sets where most
/// rules are quiescent most of the time. Every eighth rule is a firing
/// variant so the sweep also exercises the repair path.
pub fn synthetic_rules(n: usize) -> RuleSet {
    let mut src = String::new();
    for i in 0..n {
        if i % 8 == 7 {
            // Firing variant: marks unmarked endpoints of knows edges.
            src.push_str(&format!(
                "rule syn_fire_{i} [incompleteness]
                 match (x:Person)-[knows]->(y:Person)
                 where missing(y.syn{i})
                 repair set y.syn{i} = true\n"
            ));
        } else {
            src.push_str(&format!(
                "rule syn_scan_{i} [conflict]
                 match (x:Person)-[knows]->(y:Person)
                 where x.syn{i} == 1, y.syn{i} == 0
                 repair set y.syn{i} = 1\n"
            ));
        }
    }
    RuleSet::from_dsl(format!("synthetic-{n}"), &src).expect("synthetic rules must parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{analyze, Category, Effectiveness};

    #[test]
    fn gold_catalog_parses_and_covers_categories() {
        let set = gold_kg_rules();
        assert_eq!(set.len(), 10);
        let (inc, con, red) = set.category_counts();
        assert!(inc >= 3 && con >= 5 && red >= 1, "{inc}/{con}/{red}");
    }

    #[test]
    fn gold_catalog_covers_all_seven_operations() {
        let set = gold_kg_rules();
        let mut ops: std::collections::HashSet<&'static str> = Default::default();
        for r in &set.rules {
            for a in &r.actions {
                ops.insert(a.op_name());
            }
        }
        // insert-node is exercised by the social/create flows; the KG gold
        // set uses the other six.
        for op in [
            "insert-edge",
            "delete-edge",
            "update-node",
            "update-edge-label",
            "merge-nodes",
        ] {
            assert!(ops.contains(op), "missing {op}");
        }
    }

    #[test]
    fn gold_rules_are_effective() {
        let set = gold_kg_rules();
        let report = analyze(&set.rules);
        for (r, eff) in set.rules.iter().zip(&report.effectiveness) {
            assert_ne!(
                *eff,
                Effectiveness::Ineffective,
                "rule {} must repair its own violation",
                r.name
            );
        }
    }

    #[test]
    fn social_catalog_parses() {
        let set = social_rules();
        assert_eq!(set.len(), 4);
        assert!(set.by_category(Category::Redundancy).count() >= 1);
    }

    #[test]
    fn synthetic_rules_scale() {
        for n in [1, 10, 40] {
            let set = synthetic_rules(n);
            assert_eq!(set.len(), n);
        }
    }
}
