//! Synthetic knowledge-graph generator.
//!
//! Substitutes for the real-world KG dumps (YAGO/DBpedia-class) the paper
//! evaluates on: a typed schema (Person/City/Country/Company), power-law
//! social degree via preferential attachment, and denormalised semantic
//! redundancy (`Person.country` mirrors the country of the person's city)
//! — exactly the structures the gold rule catalog
//! ([`crate::catalog::gold_kg_rules`]) constrains, so a freshly generated
//! graph is violation-free and every violation after noise injection is
//! attributable to the injected error.

use grepair_graph::{Graph, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KgConfig {
    /// Number of Person nodes (drives all other counts by default).
    pub persons: usize,
    /// Number of City nodes (0 = `max(5, persons/50)`).
    pub cities: usize,
    /// Number of Country nodes (0 = `max(3, cities/10)`).
    pub countries: usize,
    /// Number of Company nodes (0 = `max(2, persons/20)`).
    pub companies: usize,
    /// Mean out-degree of the `knows` preferential-attachment layer.
    pub knows_per_person: f64,
    /// Fraction of persons in a (symmetric) marriage.
    pub married_fraction: f64,
    /// RNG seed; equal configs generate identical graphs.
    pub seed: u64,
}

impl Default for KgConfig {
    fn default() -> Self {
        Self {
            persons: 1000,
            cities: 0,
            countries: 0,
            companies: 0,
            knows_per_person: 4.0,
            married_fraction: 0.3,
            seed: 42,
        }
    }
}

impl KgConfig {
    /// Config scaled to roughly `n` persons with defaults elsewhere.
    pub fn with_persons(n: usize) -> Self {
        Self {
            persons: n,
            ..Self::default()
        }
    }

    fn resolved(&self) -> (usize, usize, usize) {
        let cities = if self.cities == 0 {
            (self.persons / 50).max(5)
        } else {
            self.cities
        };
        let countries = if self.countries == 0 {
            (cities / 10).max(3)
        } else {
            self.countries
        };
        let companies = if self.companies == 0 {
            (self.persons / 20).max(2)
        } else {
            self.companies
        };
        (cities, countries, companies)
    }
}

/// Handles into a generated KG, for noise injection and tests.
#[derive(Clone, Debug, Default)]
pub struct KgRefs {
    /// All Person nodes.
    pub persons: Vec<NodeId>,
    /// All City nodes.
    pub cities: Vec<NodeId>,
    /// All Country nodes.
    pub countries: Vec<NodeId>,
    /// All Company nodes.
    pub companies: Vec<NodeId>,
}

/// Generate a clean knowledge graph.
pub fn generate_kg(cfg: &KgConfig) -> (Graph, KgRefs) {
    let _span = grepair_obs::span("gen.generate_kg", "gen");
    grepair_obs::counter("gen.graphs_generated").inc();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let (n_cities, n_countries, n_companies) = cfg.resolved();

    let person = g.label("Person");
    let city = g.label("City");
    let country = g.label("Country");
    let company = g.label("Company");
    let lives_in = g.label("livesIn");
    let in_country = g.label("inCountry");
    let citizen_of = g.label("citizenOf");
    let works_for = g.label("worksFor");
    let based_in = g.label("basedIn");
    let knows = g.label("knows");
    let married_to = g.label("marriedTo");
    let born_in = g.label("bornIn");

    let name_k = g.attr_key("name");
    let ssn_k = g.attr_key("ssn");
    let country_k = g.attr_key("country");
    let population_k = g.attr_key("population");

    let mut refs = KgRefs::default();

    for i in 0..n_countries {
        let n = g.add_node_with_attrs(
            country,
            vec![(name_k, Value::Str(format!("country{i}")))],
        );
        refs.countries.push(n);
    }
    // city_country[i] = country index of city i, for denormalised attrs.
    let mut city_country = Vec::with_capacity(n_cities);
    for i in 0..n_cities {
        let n = g.add_node_with_attrs(
            city,
            vec![
                (name_k, Value::Str(format!("city{i}"))),
                (population_k, Value::Int(rng.gen_range(10_000..5_000_000))),
            ],
        );
        let ci = rng.gen_range(0..n_countries);
        g.add_edge(n, refs.countries[ci], in_country).unwrap();
        city_country.push(ci);
        refs.cities.push(n);
    }
    for i in 0..n_companies {
        let n = g.add_node_with_attrs(
            company,
            vec![(name_k, Value::Str(format!("company{i}")))],
        );
        let ci = rng.gen_range(0..n_cities);
        g.add_edge(n, refs.cities[ci], based_in).unwrap();
        refs.companies.push(n);
    }

    for i in 0..cfg.persons {
        let ci = rng.gen_range(0..n_cities);
        let ki = city_country[ci];
        let country_name = format!("country{ki}");
        let n = g.add_node_with_attrs(
            person,
            vec![
                (name_k, Value::Str(format!("person{i}"))),
                (ssn_k, Value::Int(i as i64)),
                (country_k, Value::Str(country_name)),
            ],
        );
        g.add_edge(n, refs.cities[ci], lives_in).unwrap();
        g.add_edge(n, refs.countries[ki], citizen_of).unwrap();
        if rng.gen_bool(0.7) && !refs.companies.is_empty() {
            let co = rng.gen_range(0..refs.companies.len());
            g.add_edge(n, refs.companies[co], works_for).unwrap();
        }
        if rng.gen_bool(0.8) {
            let bi = rng.gen_range(0..n_cities);
            g.add_edge(n, refs.cities[bi], born_in).unwrap();
        }
        refs.persons.push(n);
    }

    // Symmetric marriages over disjoint person pairs.
    let married_pairs = ((cfg.persons / 2) as f64 * cfg.married_fraction) as usize;
    for p in 0..married_pairs {
        let a = refs.persons[2 * p];
        let b = refs.persons[2 * p + 1];
        g.add_edge(a, b, married_to).unwrap();
        g.add_edge(b, a, married_to).unwrap();
    }

    // Preferential-attachment `knows` layer: endpoints of prior edges form
    // the sampling pool, giving a power-law in-degree.
    let mut pool: Vec<NodeId> = refs.persons.iter().copied().take(2).collect();
    if pool.is_empty() {
        return (g, refs);
    }
    for &p in &refs.persons {
        let k = sample_degree(&mut rng, cfg.knows_per_person);
        for _ in 0..k {
            let target = if rng.gen_bool(0.8) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                refs.persons[rng.gen_range(0..refs.persons.len())]
            };
            if target == p || g.has_edge_labeled(p, target, knows) {
                continue;
            }
            g.add_edge(p, target, knows).unwrap();
            pool.push(target);
            pool.push(p);
        }
    }
    (g, refs)
}

/// Degree sample with mean `mean` (geometric-ish, min 0).
fn sample_degree(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut k = 0usize;
    while !rng.gen_bool(p) && k < 64 {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::gold_kg_rules;
    use grepair_core::RepairEngine;

    #[test]
    fn generation_is_deterministic() {
        let cfg = KgConfig::with_persons(200);
        let (g1, _) = generate_kg(&cfg);
        let (g2, _) = generate_kg(&cfg);
        assert_eq!(g1.to_doc(), g2.to_doc());
    }

    #[test]
    fn different_seeds_differ() {
        let (g1, _) = generate_kg(&KgConfig {
            seed: 1,
            ..KgConfig::with_persons(200)
        });
        let (g2, _) = generate_kg(&KgConfig {
            seed: 2,
            ..KgConfig::with_persons(200)
        });
        assert_ne!(g1.to_doc(), g2.to_doc());
    }

    #[test]
    fn sizes_match_config() {
        let cfg = KgConfig {
            persons: 300,
            cities: 10,
            countries: 4,
            companies: 6,
            ..KgConfig::default()
        };
        let (g, refs) = generate_kg(&cfg);
        assert_eq!(refs.persons.len(), 300);
        assert_eq!(refs.cities.len(), 10);
        assert_eq!(refs.countries.len(), 4);
        assert_eq!(refs.companies.len(), 6);
        let person = g.try_label("Person").unwrap();
        assert_eq!(g.count_nodes_with_label(person), 300);
        g.check_invariants().unwrap();
    }

    #[test]
    fn clean_graph_has_no_violations() {
        let (g, _) = generate_kg(&KgConfig::with_persons(300));
        let rules = gold_kg_rules();
        let engine = RepairEngine::default();
        assert_eq!(
            engine.count_violations(&g, &rules.rules),
            0,
            "generator must satisfy the gold rules"
        );
    }

    #[test]
    fn marriages_are_symmetric() {
        let (g, refs) = generate_kg(&KgConfig::with_persons(100));
        let married = g.try_label("marriedTo").unwrap();
        for e in g.edges() {
            let er = g.edge(e).unwrap();
            if er.label == married {
                assert!(g.has_edge_labeled(er.dst, er.src, married));
            }
        }
        assert!(!refs.persons.is_empty());
    }

    #[test]
    fn knows_layer_has_hubs() {
        let (g, refs) = generate_kg(&KgConfig::with_persons(2000));
        let knows = g.try_label("knows").unwrap();
        let max_in = refs
            .persons
            .iter()
            .map(|&p| {
                g.in_edges(p)
                    .filter(|&e| g.edge(e).unwrap().label == knows)
                    .count()
            })
            .max()
            .unwrap();
        assert!(
            max_in >= 20,
            "preferential attachment should produce hubs, max in-degree {max_in}"
        );
    }
}
