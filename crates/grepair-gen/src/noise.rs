//! Seeded noise injection with an exact ground-truth ledger.
//!
//! Substitutes for the manually annotated error sets of the paper's
//! evaluation: each injected error is one of the paper's three
//! inconsistency classes, is guaranteed to be *repairable* by the gold
//! catalog ([`crate::catalog::gold_kg_rules`]), and is recorded in a
//! [`GroundTruth`] ledger precise enough for exact precision/recall
//! computation (including the clone → original identity map that lets the
//! evaluation canonicalise merged duplicates).

use crate::kg::KgRefs;
use grepair_graph::{Graph, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// The paper's three inconsistency classes, as noise categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// Deleted edges / attributes.
    Incompleteness,
    /// Contradictory edges, labels, and attribute values.
    Conflict,
    /// Duplicated entities.
    Redundancy,
}

/// One injected error, with everything needed to audit the repair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum InjectedError {
    /// Removed an edge (incompleteness).
    RemovedEdge {
        /// Former source.
        src: NodeId,
        /// Former target.
        dst: NodeId,
        /// Relation label.
        label: String,
    },
    /// Removed an attribute (incompleteness).
    RemovedAttr {
        /// The node.
        node: NodeId,
        /// Attribute key.
        key: String,
        /// The clean value.
        value: Value,
    },
    /// Added a self-loop (conflict).
    AddedSelfLoop {
        /// The node.
        node: NodeId,
        /// Relation label.
        label: String,
    },
    /// Added a spurious edge (conflict — e.g. bigamy).
    AddedSpuriousEdge {
        /// Source.
        src: NodeId,
        /// Target.
        dst: NodeId,
        /// Relation label.
        label: String,
    },
    /// Corrupted an attribute value (conflict).
    CorruptedAttr {
        /// The node.
        node: NodeId,
        /// Attribute key.
        key: String,
        /// Clean value.
        clean: Value,
        /// Injected dirty value.
        dirty: Value,
    },
    /// Relabelled an edge (conflict — mistyped relation).
    RelabeledEdge {
        /// Source.
        src: NodeId,
        /// Target.
        dst: NodeId,
        /// Clean label.
        from: String,
        /// Dirty label.
        to: String,
    },
    /// Cloned a node (redundancy).
    ClonedNode {
        /// The original.
        original: NodeId,
        /// The duplicate.
        clone: NodeId,
    },
}

impl InjectedError {
    /// The class this error belongs to.
    pub fn class(&self) -> ErrorClass {
        match self {
            InjectedError::RemovedEdge { .. } | InjectedError::RemovedAttr { .. } => {
                ErrorClass::Incompleteness
            }
            InjectedError::AddedSelfLoop { .. }
            | InjectedError::AddedSpuriousEdge { .. }
            | InjectedError::CorruptedAttr { .. }
            | InjectedError::RelabeledEdge { .. } => ErrorClass::Conflict,
            InjectedError::ClonedNode { .. } => ErrorClass::Redundancy,
        }
    }
}

/// Noise parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Errors to inject, as a fraction of the person count.
    pub rate: f64,
    /// Enabled classes (errors are distributed round-robin).
    pub classes: Vec<ErrorClass>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            classes: vec![
                ErrorClass::Incompleteness,
                ErrorClass::Conflict,
                ErrorClass::Redundancy,
            ],
            seed: 7,
        }
    }
}

impl NoiseConfig {
    /// Noise restricted to one class (the F2 per-class experiment).
    pub fn single_class(class: ErrorClass, rate: f64, seed: u64) -> Self {
        Self {
            rate,
            classes: vec![class],
            seed,
        }
    }
}

/// Ledger of everything the injector did.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// All injected errors, in injection order.
    pub errors: Vec<InjectedError>,
    /// Clone → original map for identity canonicalisation.
    pub clone_of: FxHashMap<NodeId, NodeId>,
}

impl GroundTruth {
    /// Number of injected errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Count per class: (incompleteness, conflict, redundancy).
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in &self.errors {
            match e.class() {
                ErrorClass::Incompleteness => c.0 += 1,
                ErrorClass::Conflict => c.1 += 1,
                ErrorClass::Redundancy => c.2 += 1,
            }
        }
        c
    }
}

/// Inject noise into a clean KG generated by [`crate::kg::generate_kg`].
///
/// Each error gets a distinct "center" person so errors never mask each
/// other — recall losses are then attributable to the repair system, not
/// to error interactions.
pub fn inject_kg_noise(g: &mut Graph, refs: &KgRefs, cfg: &NoiseConfig) -> GroundTruth {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut truth = GroundTruth::default();
    if cfg.classes.is_empty() || refs.persons.is_empty() {
        return truth;
    }
    let target = ((refs.persons.len() as f64 * cfg.rate).round() as usize).max(1);
    let mut used: FxHashSet<NodeId> = FxHashSet::default();
    let mut injected = 0usize;
    let mut class_idx = 0usize;
    // Bound the search for eligible sites.
    let mut attempts = 0usize;
    let max_attempts = target * 50 + 100;

    while injected < target && attempts < max_attempts {
        attempts += 1;
        let class = cfg.classes[class_idx % cfg.classes.len()];
        let injected_one = match class {
            ErrorClass::Incompleteness => {
                inject_incompleteness(g, refs, &mut rng, &mut used, &mut truth)
            }
            ErrorClass::Conflict => inject_conflict(g, refs, &mut rng, &mut used, &mut truth),
            ErrorClass::Redundancy => inject_redundancy(g, refs, &mut rng, &mut used, &mut truth),
        };
        if injected_one {
            injected += 1;
            class_idx += 1;
        }
    }
    truth
}

fn pick_unused(
    rng: &mut StdRng,
    persons: &[NodeId],
    used: &FxHashSet<NodeId>,
    g: &Graph,
) -> Option<NodeId> {
    for _ in 0..32 {
        let p = persons[rng.gen_range(0..persons.len())];
        if !used.contains(&p) && g.contains_node(p) {
            return Some(p);
        }
    }
    None
}

fn inject_incompleteness(
    g: &mut Graph,
    refs: &KgRefs,
    rng: &mut StdRng,
    used: &mut FxHashSet<NodeId>,
    truth: &mut GroundTruth,
) -> bool {
    let Some(p) = pick_unused(rng, &refs.persons, used, g) else {
        return false;
    };
    let citizen_of = g.try_label("citizenOf").expect("KG labels");
    let married_to = g.try_label("marriedTo").expect("KG labels");
    let country_k = g.try_attr_key("country").expect("KG attrs");
    match rng.gen_range(0..3) {
        0 => {
            // Remove a citizenship edge.
            let Some(e) = g.out_edges(p).find(|&e| g.edge(e).unwrap().label == citizen_of)
            else {
                return false;
            };
            let er = g.edge(e).unwrap();
            g.remove_edge(e).unwrap();
            used.insert(p);
            truth.errors.push(InjectedError::RemovedEdge {
                src: er.src,
                dst: er.dst,
                label: "citizenOf".into(),
            });
            true
        }
        1 => {
            // Remove a marriage back-edge (keep the forward direction).
            let Some(e) = g.out_edges(p).find(|&e| g.edge(e).unwrap().label == married_to)
            else {
                return false;
            };
            let er = g.edge(e).unwrap();
            if used.contains(&er.dst) || !g.has_edge_labeled(er.dst, er.src, married_to) {
                return false;
            }
            g.remove_edge(e).unwrap();
            used.insert(er.src);
            used.insert(er.dst);
            truth.errors.push(InjectedError::RemovedEdge {
                src: er.src,
                dst: er.dst,
                label: "marriedTo".into(),
            });
            true
        }
        _ => {
            // Remove the denormalised country attribute.
            let Some(v) = g.remove_attr(p, country_k).unwrap() else {
                return false;
            };
            used.insert(p);
            truth.errors.push(InjectedError::RemovedAttr {
                node: p,
                key: "country".into(),
                value: v,
            });
            true
        }
    }
}

fn inject_conflict(
    g: &mut Graph,
    refs: &KgRefs,
    rng: &mut StdRng,
    used: &mut FxHashSet<NodeId>,
    truth: &mut GroundTruth,
) -> bool {
    let Some(p) = pick_unused(rng, &refs.persons, used, g) else {
        return false;
    };
    let citizen_of = g.try_label("citizenOf").expect("KG labels");
    let married_to = g.try_label("marriedTo").expect("KG labels");
    let lives_in = g.try_label("livesIn").expect("KG labels");
    let country_k = g.try_attr_key("country").expect("KG attrs");
    match rng.gen_range(0..4) {
        0 => {
            // Self marriage.
            if g.has_edge_labeled(p, p, married_to) {
                return false;
            }
            g.add_edge(p, p, married_to).unwrap();
            used.insert(p);
            truth.errors.push(InjectedError::AddedSelfLoop {
                node: p,
                label: "marriedTo".into(),
            });
            true
        }
        1 => {
            // Bigamy: p is symmetrically married to someone; add an
            // unreciprocated marriage edge to a third person.
            let Some(spouse_e) = g.out_edges(p).find(|&e| g.edge(e).unwrap().label == married_to)
            else {
                return false;
            };
            let spouse = g.edge(spouse_e).unwrap().dst;
            if !g.has_edge_labeled(spouse, p, married_to) {
                return false;
            }
            let Some(z) = pick_unused(rng, &refs.persons, used, g) else {
                return false;
            };
            if z == p
                || z == spouse
                || g.has_edge_labeled(p, z, married_to)
                || g.has_edge_labeled(z, p, married_to)
            {
                return false;
            }
            g.add_edge(p, z, married_to).unwrap();
            used.insert(p);
            used.insert(z);
            truth.errors.push(InjectedError::AddedSpuriousEdge {
                src: p,
                dst: z,
                label: "marriedTo".into(),
            });
            true
        }
        2 => {
            // Corrupt the denormalised country attribute.
            let Some(clean) = g.attr(p, country_k).cloned() else {
                return false;
            };
            let dirty = Value::Str(format!("atlantis{}", rng.gen_range(0..1000)));
            g.set_attr(p, country_k, dirty.clone()).unwrap();
            used.insert(p);
            truth.errors.push(InjectedError::CorruptedAttr {
                node: p,
                key: "country".into(),
                clean,
                dirty,
            });
            true
        }
        _ => {
            // Mistype citizenship as livesIn (a Person-livesIn->Country
            // type violation).
            let Some(e) = g.out_edges(p).find(|&e| g.edge(e).unwrap().label == citizen_of)
            else {
                return false;
            };
            let er = g.edge(e).unwrap();
            g.set_edge_label(e, lives_in).unwrap();
            used.insert(p);
            truth.errors.push(InjectedError::RelabeledEdge {
                src: er.src,
                dst: er.dst,
                from: "citizenOf".into(),
                to: "livesIn".into(),
            });
            true
        }
    }
}

fn inject_redundancy(
    g: &mut Graph,
    refs: &KgRefs,
    rng: &mut StdRng,
    used: &mut FxHashSet<NodeId>,
    truth: &mut GroundTruth,
) -> bool {
    let Some(p) = pick_unused(rng, &refs.persons, used, g) else {
        return false;
    };
    let person = g.try_label("Person").expect("KG labels");
    let knows = g.try_label("knows").expect("KG labels");
    // Clone with identical identity attributes.
    let attrs: Vec<_> = g.attrs(p).to_vec();
    let clone = g.add_node_with_attrs(person, attrs);
    // Copy structural context: livesIn/citizenOf exactly, knows sampled.
    let out: Vec<_> = g.out_edges(p).collect();
    for e in out {
        let er = g.edge(e).unwrap();
        let name = g.label_name(er.label).to_owned();
        let copy = match name.as_str() {
            "livesIn" | "citizenOf" => true,
            "knows" => rng.gen_bool(0.5),
            _ => false,
        };
        if copy {
            let l = g.try_label(&name).unwrap();
            let _ = g.add_edge(clone, er.dst, l);
        }
    }
    let _ = knows;
    used.insert(p);
    used.insert(clone);
    truth.clone_of.insert(clone, p);
    truth.errors.push(InjectedError::ClonedNode {
        original: p,
        clone,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::gold_kg_rules;
    use crate::kg::{generate_kg, KgConfig};
    use grepair_core::RepairEngine;

    fn setup(rate: f64, seed: u64) -> (Graph, KgRefs, GroundTruth) {
        let (mut g, refs) = generate_kg(&KgConfig::with_persons(400));
        let truth = inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig {
                rate,
                seed,
                ..NoiseConfig::default()
            },
        );
        (g, refs, truth)
    }

    #[test]
    fn injection_is_deterministic() {
        let (g1, _, t1) = setup(0.1, 3);
        let (g2, _, t2) = setup(0.1, 3);
        assert_eq!(g1.to_doc(), g2.to_doc());
        assert_eq!(t1.len(), t2.len());
    }

    #[test]
    fn injection_hits_target_rate() {
        let (_, refs, truth) = setup(0.1, 3);
        let want = (refs.persons.len() as f64 * 0.1).round() as usize;
        assert!(
            truth.len() >= want * 9 / 10,
            "injected {} of {want}",
            truth.len()
        );
        let (i, c, r) = truth.class_counts();
        assert!(i > 0 && c > 0 && r > 0, "{i}/{c}/{r}");
    }

    #[test]
    fn every_error_creates_a_violation() {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(400));
        let rules = gold_kg_rules();
        let engine = RepairEngine::default();
        assert_eq!(engine.count_violations(&clean, &rules.rules), 0);

        let (dirty, _, truth) = setup(0.1, 11);
        assert!(!truth.is_empty());
        let violations = engine.count_violations(&dirty, &rules.rules);
        assert!(
            violations >= truth.len() / 2,
            "{} errors produced only {violations} violations",
            truth.len()
        );
        let _ = refs;
    }

    #[test]
    fn gold_rules_repair_injected_noise_to_convergence() {
        let (mut dirty, _, truth) = setup(0.08, 5);
        let rules = gold_kg_rules();
        let report = RepairEngine::default().repair(&mut dirty, &rules.rules);
        assert!(
            report.converged,
            "residual violations: {}",
            report.violations_remaining
        );
        assert!(report.repairs_applied >= truth.len() / 2);
        dirty.check_invariants().unwrap();
    }

    #[test]
    fn single_class_noise() {
        let (mut g, refs) = generate_kg(&KgConfig::with_persons(300));
        let truth = inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig::single_class(ErrorClass::Redundancy, 0.05, 9),
        );
        let (i, c, r) = truth.class_counts();
        assert_eq!((i, c), (0, 0));
        assert!(r > 0);
        assert_eq!(truth.clone_of.len(), r);
    }

    #[test]
    fn zero_rate_still_injects_at_least_one() {
        let (mut g, refs) = generate_kg(&KgConfig::with_persons(100));
        let truth = inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig {
                rate: 0.0,
                seed: 1,
                ..NoiseConfig::default()
            },
        );
        assert_eq!(truth.len(), 1);
    }
}
