//! Property tests for the data substrate: generation and injection are
//! deterministic, ledgers are consistent, and the gold rules repair any
//! injected configuration to convergence.

use grepair_core::RepairEngine;
use grepair_gen::{
    generate_kg, gold_kg_rules, inject_kg_noise, ErrorClass, KgConfig, NoiseConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same config ⇒ byte-identical graph and ledger.
    #[test]
    fn generation_and_injection_deterministic(
        persons in 50usize..200,
        rate in 0.01f64..0.25,
        seed in 0u64..1000,
    ) {
        let run = || {
            let (mut g, refs) = generate_kg(&KgConfig { seed, ..KgConfig::with_persons(persons) });
            let truth = inject_kg_noise(&mut g, &refs, &NoiseConfig { rate, seed, ..NoiseConfig::default() });
            (g.to_doc().to_json(), truth.len(), truth.class_counts())
        };
        prop_assert_eq!(run(), run());
    }

    /// Ledger consistency: class counts sum to the total; clones recorded
    /// exactly once each; the dirty graph differs from the clean one.
    #[test]
    fn ledger_is_consistent(
        persons in 50usize..200,
        rate in 0.02f64..0.25,
        seed in 0u64..1000,
    ) {
        let (clean, refs) = generate_kg(&KgConfig { seed, ..KgConfig::with_persons(persons) });
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig { rate, seed, ..NoiseConfig::default() });
        let (i, c, r) = truth.class_counts();
        prop_assert_eq!(i + c + r, truth.len());
        prop_assert_eq!(truth.clone_of.len(), r);
        prop_assert!(!truth.is_empty());
        prop_assert_ne!(clean.to_doc(), dirty.to_doc());
        prop_assert!(dirty.check_invariants().is_ok());
    }

    /// The gold rules repair any injected configuration to convergence.
    #[test]
    fn gold_rules_always_converge(
        persons in 50usize..150,
        rate in 0.02f64..0.2,
        seed in 0u64..500,
        class_sel in 0u8..4,
    ) {
        let (mut g, refs) = generate_kg(&KgConfig { seed, ..KgConfig::with_persons(persons) });
        let cfg = match class_sel {
            0 => NoiseConfig::single_class(ErrorClass::Incompleteness, rate, seed),
            1 => NoiseConfig::single_class(ErrorClass::Conflict, rate, seed),
            2 => NoiseConfig::single_class(ErrorClass::Redundancy, rate, seed),
            _ => NoiseConfig { rate, seed, ..NoiseConfig::default() },
        };
        inject_kg_noise(&mut g, &refs, &cfg);
        let rules = gold_kg_rules();
        let report = RepairEngine::default().repair(&mut g, &rules.rules);
        prop_assert!(report.converged, "residual {}", report.violations_remaining);
        prop_assert!(g.check_invariants().is_ok());
    }
}
