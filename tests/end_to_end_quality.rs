//! The reproduction contract as executable assertions: the qualitative
//! *shapes* of the reconstructed evaluation must hold (see DESIGN.md §4).

use grepair_core::{EngineConfig, RepairEngine};
use grepair_eval::{delete_only_rules, evaluate_repair, random_repair};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use std::time::Instant;

/// F1 shape: GRR dominates the baselines in F-measure at every noise rate.
#[test]
fn grr_dominates_baselines_across_noise_rates() {
    let gold = gold_kg_rules();
    for rate in [0.05, 0.1, 0.2] {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(400));
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(
            &mut dirty,
            &refs,
            &NoiseConfig {
                rate,
                seed: 21,
                ..NoiseConfig::default()
            },
        );

        let mut g = dirty.clone();
        let rep = RepairEngine::default().repair(&mut g, &gold.rules);
        let q_grr = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);

        let mut g = dirty.clone();
        let del = delete_only_rules(&gold);
        let rep = RepairEngine::default().repair(&mut g, &del.rules);
        let q_del = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);

        let mut g = dirty.clone();
        let rep = random_repair(&mut g, &gold.rules, 13, 64);
        let q_rnd = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);

        assert!(
            q_grr.f1 > q_del.f1 && q_del.f1 > q_rnd.f1,
            "rate {rate}: expected grr ({:.3}) > delete-only ({:.3}) > random ({:.3})",
            q_grr.f1,
            q_del.f1,
            q_rnd.f1
        );
    }
}

/// F3 shape: at growing |G|, the incremental engine's advantage over the
/// naive full-matcher engine grows.
#[test]
fn incremental_speedup_grows_with_graph_size() {
    let gold = gold_kg_rules();
    let mut speedups = Vec::new();
    for persons in [200usize, 800] {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(persons));
        let mut dirty = clean.clone();
        inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());

        let mut g = dirty.clone();
        let t0 = Instant::now();
        let rep = RepairEngine::default().repair(&mut g, &gold.rules);
        let inc = t0.elapsed();
        assert!(rep.converged);

        let mut g = dirty.clone();
        let t0 = Instant::now();
        RepairEngine::new(EngineConfig::naive()).repair(&mut g, &gold.rules);
        let naive = t0.elapsed();

        speedups.push(naive.as_secs_f64() / inc.as_secs_f64().max(1e-9));
    }
    assert!(
        speedups[1] > speedups[0],
        "speedup must grow with |G|: {speedups:?}"
    );
    assert!(speedups[1] > 2.0, "large-graph speedup too small: {speedups:?}");
}

/// F7 shape: GRR repairs make fewer, better-targeted edits than the
/// delete-only baseline.
#[test]
fn grr_edits_are_closer_to_ground_truth() {
    let gold = gold_kg_rules();
    let (clean, refs) = generate_kg(&KgConfig::with_persons(400));
    let mut dirty = clean.clone();
    let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());

    let mut g = dirty.clone();
    let rep = RepairEngine::default().repair(&mut g, &gold.rules);
    let q_grr = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);

    let mut g = dirty.clone();
    let del = delete_only_rules(&gold);
    let rep = RepairEngine::default().repair(&mut g, &del.rules);
    let q_del = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);

    // GRR's made-edits are nearly all needed; delete-only wastes edits.
    let waste_grr = q_grr.made - q_grr.correct;
    let waste_del = q_del.made - q_del.correct;
    assert!(
        waste_grr < waste_del,
        "grr wasted {waste_grr} edits, delete-only {waste_del}"
    );
    assert!(q_grr.correct >= q_del.correct);
}

/// Determinism: the whole pipeline is reproducible end to end.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let gold = gold_kg_rules();
        let (clean, refs) = generate_kg(&KgConfig::with_persons(300));
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
        let mut g = dirty.clone();
        let rep = RepairEngine::default().repair(&mut g, &gold.rules);
        let q = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);
        (rep.repairs_applied, q.made, q.correct, g.to_doc().to_json())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3, "final graphs must be byte-identical");
}
