//! End-to-end telemetry: every layer of the stack contributes spans and
//! histograms to a full `repair --store` run, and the counters the
//! observability layer reports are *deterministic* — identical totals
//! whether matching and WAL replay run on 1, 2, or 8 worker threads.
//!
//! Tracing state is process-global, so every test here serialises on one
//! mutex and works in counter/histogram *deltas* (the registry is
//! cumulative and shared with whatever ran before).

use grepair_core::{EngineConfig, RepairEngine};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_obs::TraceEvent;
use grepair_store::{DurableGraph, StoreConfig};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "grepair-telemetry-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `f` with tracing enabled and return its result plus the span
/// buffer it produced (cleared of anything buffered beforehand).
fn with_tracing<T>(f: impl FnOnce() -> T) -> (T, Vec<TraceEvent>) {
    grepair_obs::take_events();
    grepair_obs::set_tracing(true);
    let out = f();
    grepair_obs::set_tracing(false);
    (out, grepair_obs::take_events())
}

/// The tentpole acceptance check: a full repair over a durable store,
/// with frozen scans, leaves ≥ 1 span and ≥ 1 histogram sample from
/// every layer — engine, matcher, planner, freeze, and WAL.
#[test]
fn every_layer_contributes_spans_and_histograms() {
    let _lock = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("layers");

    let (clean, refs) = generate_kg(&KgConfig::with_persons(200));
    let mut dirty = clean.clone();
    inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
    let rules = gold_kg_rules();
    let engine = RepairEngine::new(EngineConfig {
        freeze_scans: true, // pull the snapshot layer into the run
        ..EngineConfig::default()
    });

    let layer_histograms = [
        ("engine", "engine.rule_repair_ns"),
        ("matcher", "match.find_all_ns"),
        ("planner", "plan.compile_ns"),
        ("freeze", "graph.freeze_ns"),
        ("wal", "wal.append_ns"),
        ("wal", "store.recovery_ns"),
    ];
    let before: Vec<u64> = layer_histograms
        .iter()
        .map(|(_, n)| grepair_obs::histogram(n).count())
        .collect();

    let ((), events) = with_tracing(|| {
        let mut store = DurableGraph::create_with(&dir, StoreConfig::default(), dirty).unwrap();
        let report = store.repair(&engine, &rules.rules).unwrap();
        assert!(report.converged, "gold rules must converge");
        assert!(report.repairs_applied > 0, "noise must need repairs");
        drop(store);
        // Reopen so recovery (WAL replay) contributes too.
        let reopened = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert!(reopened.last_recovery().records_replayed > 0);
    });

    let layer_spans = [
        ("engine", "engine.repair"),
        ("engine", "engine.round"),
        ("matcher", "match.find_all"),
        ("planner", "plan.compile"),
        ("freeze", "graph.freeze"),
        ("wal", "store.recovery"),
    ];
    for (layer, span) in layer_spans {
        assert!(
            events.iter().any(|e| e.ph == 'X' && e.name == span),
            "layer {layer} contributed no {span} span"
        );
    }
    assert!(
        events
            .iter()
            .any(|e| e.ph == 'i' && e.name == "engine.outcome.completed"),
        "converged run must tag its outcome in the trace"
    );
    grepair_obs::spans_well_formed(&events).expect("trace must nest properly");

    for ((layer, name), before) in layer_histograms.iter().zip(before) {
        let after = grepair_obs::histogram(name).count();
        assert!(
            after > before,
            "layer {layer} recorded no {name} samples ({before} -> {after})"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Guardrail trips are telemetry-covered too: a repair cut short by an
/// expired deadline bumps `limit.deadline_trips` exactly once (the trip
/// is sticky and first-wins), emits the `limit.trip` warn event, and
/// tags the run's outcome with an `engine.outcome.deadline` instant in
/// the trace — so a truncated trace is distinguishable from a completed
/// one without out-of-band context.
#[test]
fn tripped_deadline_run_contributes_limit_counters_and_outcome_instant() {
    let _lock = LOCK.lock().unwrap_or_else(|p| p.into_inner());

    let (mut g, refs) = generate_kg(&KgConfig::with_persons(150));
    inject_kg_noise(&mut g, &refs, &NoiseConfig::default());
    let rules = gold_kg_rules();

    let clock = grepair_obs::TestClock::new();
    let budget = grepair_obs::Budget::unlimited()
        .with_test_clock(&clock)
        .with_deadline(std::time::Duration::from_millis(5));
    clock.advance(std::time::Duration::from_secs(1));

    let trips = grepair_obs::counter("limit.deadline_trips");
    let trips_before = trips.get();
    let (report, events) = with_tracing(|| {
        RepairEngine::new(EngineConfig::default())
            .with_budget(&budget)
            .repair(&mut g, &rules.rules)
    });

    assert_eq!(report.outcome, grepair_core::RepairOutcome::Deadline);
    assert_eq!(
        trips.get(),
        trips_before + 1,
        "sticky trip must bump limit.deadline_trips exactly once"
    );
    assert!(
        events
            .iter()
            .any(|e| e.ph == 'i' && e.name == "engine.outcome.deadline"),
        "tripped run must tag its outcome in the trace"
    );
    grepair_obs::spans_well_formed(&events).expect("tripped trace must still nest");
}

/// The fault path is telemetry-covered too: a damaged snapshot skipped
/// during writable recovery records `store.fault`, and a degraded
/// read-only open of a mid-log-damaged store records `store.degraded`
/// plus an `store.fsck` span and histogram sample from its dry-run
/// recovery walk.
#[test]
fn fault_path_contributes_counters_and_spans() {
    let _lock = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("faults");

    let mut store = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
    let mut nodes = Vec::new();
    for _ in 0..50 {
        nodes.push(store.add_node("Person").unwrap());
    }
    store.commit().unwrap();
    store.compact().unwrap();
    for w in nodes.windows(2) {
        store.add_edge(w[0], w[1], "knows").unwrap();
    }
    store.commit().unwrap();
    store.compact().unwrap(); // second snapshot; the first stays retained
    for n in &nodes {
        store
            .set_attr(*n, "checked", grepair_graph::Value::Int(1))
            .unwrap();
    }
    store.commit().unwrap();
    let full_seq = store.last_seq();
    drop(store);

    let fault_ctr = grepair_obs::counter("store.fault");
    let degraded_ctr = grepair_obs::counter("store.degraded");
    let fsck_runs = grepair_obs::counter("store.fsck_runs");
    let fsck_hist = grepair_obs::histogram("store.fsck_ns");

    // Damage the newest snapshot: writable recovery skips it, falls
    // back to the older one, and records the skip as a store.fault.
    let (_, snap) = grepair_store::snapshot::list_snapshots(&dir)
        .unwrap()
        .pop()
        .unwrap();
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, bytes).unwrap();

    let faults_before = fault_ctr.get();
    let reopened = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(reopened.last_recovery().snapshots_skipped, 1);
    assert_eq!(reopened.last_seq(), full_seq, "log must cover the damage");
    assert!(
        fault_ctr.get() > faults_before,
        "skipped snapshot must record store.fault"
    );
    drop(reopened);

    // Mid-log damage (a flipped byte with CRC-valid frames after it):
    // writable open refuses; the degraded read-only open serves a prefix
    // and emits store.degraded plus the fsck span + histogram sample.
    let (_, seg) = grepair_store::wal::list_segments(&dir).unwrap().pop().unwrap();
    let clean = std::fs::read(&seg).unwrap();
    let header = grepair_store::wal::SEGMENT_HEADER_LEN as usize;
    let mut bytes = clean.clone();
    bytes[header + 10] ^= 0xFF;
    bytes.extend_from_slice(&clean[header..]);
    std::fs::write(&seg, bytes).unwrap();
    assert!(DurableGraph::open(&dir, StoreConfig::default()).is_err());

    let (degraded_before, runs_before, hist_before) =
        (degraded_ctr.get(), fsck_runs.get(), fsck_hist.count());
    let (ro, events) = with_tracing(|| grepair_store::ReadOnlyStore::open(&dir).unwrap());
    assert!(ro.degraded());
    assert!(ro.last_seq() < full_seq, "damage must cost some tail records");
    assert!(!ro.issues().is_empty());
    assert!(
        degraded_ctr.get() > degraded_before,
        "degraded open must record store.degraded"
    );
    assert!(fsck_runs.get() > runs_before);
    assert!(fsck_hist.count() > hist_before);
    assert!(
        events.iter().any(|e| e.ph == 'X' && e.name == "store.fsck"),
        "degraded open contributed no store.fsck span"
    );
    grepair_obs::spans_well_formed(&events).expect("fault-path trace must nest");

    std::fs::remove_dir_all(&dir).ok();
}

/// Typed mirror of the Chrome trace schema — the derive rejects missing
/// required fields, so parsing *is* the schema check.
#[derive(serde::Deserialize)]
#[allow(non_snake_case)]
struct TraceFile {
    traceEvents: Vec<TraceRow>,
}

#[derive(serde::Deserialize)]
struct TraceRow {
    name: String,
    cat: String,
    ph: char,
    ts: f64,
    /// Complete (`X`) spans carry a duration…
    dur: Option<f64>,
    /// …instants carry a scope instead.
    s: Option<String>,
    pid: u64,
    tid: u64,
}

/// The example trace committed at `examples/trace_repair.json` (produced
/// by `grepair repair --trace` over a noisy 150-person KG) stays valid
/// Chrome trace format: loadable in `chrome://tracing` / Perfetto, spans
/// from every hot layer, proper nesting per thread.
#[test]
fn committed_example_trace_is_valid_chrome_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/trace_repair.json");
    let text = std::fs::read_to_string(path).expect("examples/trace_repair.json must exist");
    let parsed: TraceFile = serde_json::from_str(&text).expect("must parse as Chrome trace");
    assert!(!parsed.traceEvents.is_empty());

    let mut spans: Vec<(u64, u64, u64)> = Vec::new(); // (tid, ts_ns, end_ns)
    for e in &parsed.traceEvents {
        assert!(!e.name.is_empty() && !e.cat.is_empty());
        assert_eq!(e.pid, 1);
        assert!(e.ts >= 0.0);
        match e.ph {
            'X' => {
                let dur = e.dur.unwrap_or_else(|| panic!("span {} missing dur", e.name));
                let ts_ns = (e.ts * 1_000.0) as u64;
                spans.push((e.tid, ts_ns, ts_ns + (dur * 1_000.0) as u64));
            }
            'i' => assert_eq!(e.s.as_deref(), Some("t"), "instant {} missing scope", e.name),
            other => panic!("unexpected phase {other:?} on {}", e.name),
        }
    }

    // Every hot layer shows up.
    let names: Vec<&str> = parsed.traceEvents.iter().map(|e| e.name.as_str()).collect();
    for span in ["engine.repair", "engine.round", "match.find_all", "plan.compile"] {
        assert!(names.contains(&span), "missing {span} in {names:?}");
    }

    // Per-tid spans nest (disjoint or strictly contained).
    spans.sort_by_key(|&(tid, ts, end)| (tid, ts, std::cmp::Reverse(end)));
    let mut stack: Vec<(u64, u64)> = Vec::new(); // (end, tid)
    for (tid, ts, end) in spans {
        while matches!(stack.last(), Some(&(top_end, top_tid)) if top_tid != tid || top_end <= ts)
        {
            stack.pop();
        }
        if let Some(&(top_end, _)) = stack.last() {
            assert!(end <= top_end, "span [{ts}, {end}) straddles parent end {top_end}");
        }
        stack.push((end, tid));
    }
}

/// Counter totals and span well-formedness must not depend on how many
/// workers the morsel-driven matcher fans out to.
#[cfg(feature = "parallel")]
#[test]
fn par_matching_telemetry_invariant_across_thread_counts() {
    use grepair_match::{Matcher, Pattern};

    let _lock = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(300));
    // The gold patterns match *violations* — noise makes them non-empty.
    inject_kg_noise(&mut g, &refs, &NoiseConfig::default());
    let rules = gold_kg_rules();
    let patterns: Vec<&Pattern> = rules.rules.iter().map(|r| &r.pattern).collect();
    let matcher = Matcher::new(&g);
    let matches_found = grepair_obs::counter("match.matches_found");

    let mut deltas: Vec<u64> = Vec::new();
    for threads in [1usize, 2, 8] {
        let before = matches_found.get();
        let (results, events) = with_tracing(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| matcher.par_find_all_many(&patterns))
        });
        grepair_obs::spans_well_formed(&events)
            .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        let total: u64 = results.iter().map(|v| v.len() as u64).sum();
        assert!(total > 0, "gold patterns must match something");
        let delta = matches_found.get() - before;
        assert_eq!(delta, total, "{threads} threads: counter vs matches");
        deltas.push(delta);
    }
    assert!(
        deltas.windows(2).all(|w| w[0] == w[1]),
        "match.matches_found depends on thread count: {deltas:?}"
    );
}

/// WAL replay telemetry is identical whether segment decode-ahead runs
/// on 1, 2, or 8 workers: same records_replayed total, well-formed
/// recovery spans.
#[cfg(feature = "parallel")]
#[test]
fn wal_replay_telemetry_invariant_across_thread_counts() {
    let _lock = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("replay");

    // Small segments force several files, so parallel decode-ahead has
    // real fan-out.
    let config = StoreConfig {
        segment_max_bytes: 4096,
        sync_on_commit: false,
        ..StoreConfig::default()
    };
    let mut store = DurableGraph::create(&dir, config.clone()).unwrap();
    let mut nodes = Vec::new();
    for _ in 0..300 {
        nodes.push(store.add_node("Person").unwrap());
    }
    for w in nodes.windows(2) {
        store.add_edge(w[0], w[1], "knows").unwrap();
    }
    store.commit().unwrap();
    let expected = store.last_seq();
    drop(store);
    assert!(expected >= 599, "test must generate a real log");

    let replayed_ctr = grepair_obs::counter("wal.records_replayed");
    let mut deltas: Vec<u64> = Vec::new();
    for threads in [1usize, 2, 8] {
        let before = replayed_ctr.get();
        let (store, events) = with_tracing(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| DurableGraph::open(&dir, config.clone()))
                .unwrap()
        });
        assert_eq!(store.last_recovery().records_replayed, expected);
        assert_eq!(store.graph().nodes().count(), 300, "{threads} threads");
        assert!(
            events
                .iter()
                .any(|e| e.ph == 'X' && e.name == "store.recovery"),
            "{threads} threads: no recovery span"
        );
        grepair_obs::spans_well_formed(&events)
            .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        deltas.push(replayed_ctr.get() - before);
    }
    assert_eq!(deltas, vec![expected, expected, expected]);

    std::fs::remove_dir_all(&dir).ok();
}
