//! Lint fixture and golden-file tests.
//!
//! `tests/fixtures/lint/` seeds one rule set per lint code (GR001–GR007);
//! each must trip exactly its code at the default severity. The GR003
//! fixture additionally pins the rustc-style text rendering and the JSON
//! schema against checked-in golden files, and the gold KG catalog is
//! both drift-guarded against `grepair_gen::catalog::GOLD_KG_DSL` and
//! required to lint deny-free (the CI lint gate depends on that).

use grepair_core::{lint_rules, parse_rules_with_spans, LintCode, LintPolicy, LintReport};

fn fixture_path(name: &str) -> String {
    format!(
        "{}/tests/fixtures/lint/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn lint_fixture(name: &str) -> LintReport {
    let (rules, spans) = parse_rules_with_spans(&fixture(name)).expect(name);
    lint_rules(&rules, &spans, &LintPolicy::default())
}

#[test]
fn every_lint_code_has_a_tripping_fixture() {
    for code in LintCode::ALL {
        let name = format!("{}.grr", code.code().to_lowercase());
        let report = lint_fixture(&name);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == code)
            .unwrap_or_else(|| panic!("{name} must trip {}", code.code()));
        assert_eq!(
            f.severity,
            code.default_severity(),
            "{name}: {} fixture severity drifted",
            code.code()
        );
        assert!(f.span.is_some(), "{name}: finding must carry a source span");
    }
}

#[test]
fn gr003_text_rendering_matches_golden() {
    let report = lint_fixture("gr003.grr");
    // The golden was captured through the CLI with this relative origin.
    let text = report.render_text("tests/fixtures/lint/gr003.grr");
    assert_eq!(text, fixture("gr003.txt"), "text golden drifted");
}

#[test]
fn gr003_json_rendering_matches_golden() {
    let report = lint_fixture("gr003.grr");
    // `micros` is wall-clock; the golden pins it to 0.
    let json = report.to_json();
    let normalized = match (json.find("\"micros\": "), json.rfind('\n')) {
        (Some(start), _) => {
            let tail = &json[start..];
            let end = start + tail.find('\n').unwrap();
            format!("{}\"micros\": 0{}", &json[..start], &json[end..])
        }
        _ => json,
    };
    assert_eq!(normalized, fixture("gr003.json"), "json golden drifted");
}

#[test]
fn gold_catalog_fixture_matches_source_and_lints_clean() {
    assert_eq!(
        fixture("gold_kg.grr"),
        grepair_gen::catalog::GOLD_KG_DSL,
        "tests/fixtures/lint/gold_kg.grr drifted from the catalog source"
    );
    let report = lint_fixture("gold_kg.grr");
    assert!(
        !report.has_denials(),
        "gold catalog must lint deny-free:\n{}",
        report.render_text("gold_kg.grr")
    );
}
