//! Serialization integration: graphs and rule sets survive JSON/text
//! round trips across crates, and loaded artifacts behave identically.

use grepair_core::{RepairEngine, RuleSet};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_graph::{Graph, GraphDoc};

#[test]
fn graph_json_round_trip_preserves_repair_behaviour() {
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(200));
    inject_kg_noise(&mut g, &refs, &NoiseConfig::default());

    let json = g.to_doc().to_json();
    let doc = GraphDoc::from_json(&json).expect("parse");
    let mut g2 = Graph::from_doc(&doc).expect("materialize");
    g2.check_invariants().unwrap();

    let rules = gold_kg_rules();
    let engine = RepairEngine::default();
    let v1 = engine.count_violations(&g, &rules.rules);
    let v2 = engine.count_violations(&g2, &rules.rules);
    assert_eq!(v1, v2, "violations must survive the round trip");

    let r1 = engine.repair(&mut g, &rules.rules);
    let r2 = engine.repair(&mut g2, &rules.rules);
    assert_eq!(r1.converged, r2.converged);
    assert_eq!(r1.repairs_applied, r2.repairs_applied);
}

#[test]
fn graph_text_round_trip() {
    let (g, _) = generate_kg(&KgConfig::with_persons(50));
    let text = g.to_doc().to_text();
    let doc = GraphDoc::from_text(&text).expect("parse text format");
    let g2 = Graph::from_doc(&doc).expect("materialize");
    assert_eq!(g.to_doc(), g2.to_doc());
}

#[test]
fn rule_set_dsl_json_dsl_stability() {
    let rules = gold_kg_rules();
    let json1 = rules.to_json();
    let rules2 = RuleSet::from_json(&json1).unwrap();
    let json2 = rules2.to_json();
    assert_eq!(json1, json2, "JSON serialization must be stable");
}

#[test]
fn doc_is_deterministic_across_identical_histories() {
    let (g1, _) = generate_kg(&KgConfig::with_persons(120));
    let (g2, _) = generate_kg(&KgConfig::with_persons(120));
    assert_eq!(g1.to_doc().to_json(), g2.to_doc().to_json());
}
