//! Engine-equivalence and configuration integration tests: the naive and
//! incremental engines must reach equivalent fixpoints; ablated matcher
//! configurations must not change results, only speed.

use grepair_core::{EngineConfig, EngineMode, RepairEngine};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_graph::{Graph, GraphStats};
use grepair_match::MatchConfig;

fn dirty(persons: usize, seed: u64) -> Graph {
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(persons));
    inject_kg_noise(
        &mut g,
        &refs,
        &NoiseConfig {
            seed,
            ..NoiseConfig::default()
        },
    );
    g
}

#[test]
fn all_engine_configs_converge_to_violation_free_graphs() {
    let rules = gold_kg_rules();
    let base = dirty(300, 5);
    let configs = vec![
        ("incremental", EngineConfig::default()),
        ("naive-indexed-frozen", EngineConfig::naive_with_indexes()),
        (
            "naive-indexed-live",
            EngineConfig {
                freeze_scans: false,
                ..EngineConfig::naive_with_indexes()
            },
        ),
        ("naive-full", EngineConfig::naive()),
        (
            "incremental-parallel",
            EngineConfig {
                parallel: true,
                ..EngineConfig::default()
            },
        ),
        (
            "incremental-frozen-seed",
            EngineConfig {
                freeze_scans: true,
                ..EngineConfig::default()
            },
        ),
        (
            "incremental-naive-matcher",
            EngineConfig {
                mode: EngineMode::Incremental,
                match_config: MatchConfig::naive(),
                ..EngineConfig::default()
            },
        ),
    ];
    let mut shapes = Vec::new();
    for (name, cfg) in configs {
        let mut g = base.clone();
        let report = RepairEngine::new(cfg).repair(&mut g, &rules.rules);
        assert!(
            report.converged,
            "{name}: residual {}",
            report.violations_remaining
        );
        g.check_invariants().unwrap();
        let s = GraphStats::compute(&g);
        shapes.push((name, s.nodes, s.edges));
    }
    // All engines must end at the same graph size (repairs are confluent
    // on this workload).
    let (n0, e0) = (shapes[0].1, shapes[0].2);
    for (name, n, e) in &shapes {
        assert_eq!((*n, *e), (n0, e0), "{name} diverged: {shapes:?}");
    }
}

#[test]
fn ablated_matchers_find_identical_violations() {
    let rules = gold_kg_rules();
    let g = dirty(300, 6);
    let full = MatchConfig::default();
    let configs = [
        full,
        MatchConfig {
            use_label_index: false,
            ..full
        },
        MatchConfig {
            use_signature: false,
            ..full
        },
        MatchConfig {
            use_degree_filter: false,
            ..full
        },
        MatchConfig {
            use_attr_index: false,
            ..full
        },
        MatchConfig {
            connected_order: false,
            ..full
        },
        MatchConfig::naive(),
    ];
    let counts: Vec<usize> = configs
        .iter()
        .map(|cfg| {
            RepairEngine::new(EngineConfig {
                match_config: *cfg,
                ..EngineConfig::default()
            })
            .count_violations(&g, &rules.rules)
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "violation counts diverged: {counts:?}"
    );
    assert!(counts[0] > 0);
}

#[test]
fn incremental_needs_one_scan_where_rescan_needs_rounds() {
    let rules = gold_kg_rules();
    let base = dirty(500, 7);

    let mut g1 = base.clone();
    let inc = RepairEngine::default().repair(&mut g1, &rules.rules);
    let mut g2 = base.clone();
    let naive = RepairEngine::new(EngineConfig::naive_with_indexes()).repair(&mut g2, &rules.rules);

    assert!(inc.converged && naive.converged);
    // The incremental engine performs exactly one full scan; all follow-up
    // discovery is delta-anchored. The rescan engine needs at least one
    // repair round plus the empty fixpoint round.
    assert_eq!(inc.rounds, 1);
    assert!(naive.rounds >= 2, "rescan rounds: {}", naive.rounds);
    // Both reach the same fixpoint.
    assert_eq!(g1.num_nodes(), g2.num_nodes());
    assert_eq!(g1.num_edges(), g2.num_edges());
}

/// On cascading rule chains — where fixing one violation creates the next
/// — the rescan engine pays a full multi-pattern scan per stage while the
/// incremental engine only re-matches around the repaired node.
#[test]
fn cascading_chain_favours_incremental() {
    const STAGES: usize = 8;
    let mut src = String::new();
    for i in 0..STAGES {
        src.push_str(&format!(
            "rule stage{i} [incompleteness]
             match (x:T)
             where has(x.a{i}), missing(x.a{next})
             repair set x.a{next} = true\n",
            next = i + 1
        ));
    }
    let rules = grepair_core::RuleSet::from_dsl("chain", &src).unwrap();
    let mut base = Graph::new();
    let a0 = base.attr_key("a0");
    for _ in 0..50 {
        let n = base.add_node_named("T");
        base.set_attr(n, a0, grepair_graph::Value::Bool(true)).unwrap();
    }

    // The chain's trigger graph is acyclic, so the default engine would
    // run it stratified; this test compares the *worklist* schedulers
    // specifically, so pin stratification off for both.
    let mut g1 = base.clone();
    let inc = RepairEngine::new(EngineConfig {
        stratify: false,
        ..EngineConfig::default()
    })
    .repair(&mut g1, &rules.rules);
    let mut g2 = base.clone();
    let naive = RepairEngine::new(EngineConfig {
        stratify: false,
        ..EngineConfig::naive_with_indexes()
    })
    .repair(&mut g2, &rules.rules);

    assert!(inc.converged && naive.converged);
    assert_eq!(inc.repairs_applied, STAGES * 50);
    assert_eq!(naive.repairs_applied, STAGES * 50);
    assert_eq!(inc.rounds, 1);
    assert!(
        naive.rounds >= 2,
        "chain must force multiple rescan rounds, got {}",
        naive.rounds
    );

    // The stratified scheduler reaches the same fixpoint with one
    // fixpoint pass per stage and no churn accounting at all.
    let mut g3 = base.clone();
    let strat = RepairEngine::default().repair(&mut g3, &rules.rules);
    assert_eq!(strat.strata, STAGES);
    assert!(strat.converged);
    assert_eq!(strat.repairs_applied, STAGES * 50);
    assert_eq!(g3.to_doc(), g1.to_doc(), "fixpoints must match");
}

/// Frozen CSR snapshots are a pure layout change: a matcher over the
/// snapshot must report exactly the live matcher's violations, rule by
/// rule, and the engine-level frozen counter must agree too.
#[test]
fn frozen_snapshot_counts_equal_live_counts() {
    use grepair_graph::FrozenGraph;
    use grepair_match::Matcher;

    let rules = gold_kg_rules();
    let g = dirty(400, 11);
    let frozen = FrozenGraph::freeze(&g);
    frozen.check_against(&g).unwrap();

    let live = Matcher::new(&g);
    let cold = Matcher::new(&frozen);
    for r in &rules.rules {
        assert_eq!(
            live.find_all(&r.pattern),
            cold.find_all(&r.pattern),
            "rule {} diverged between live and frozen matching",
            r.name
        );
    }

    let live_engine = RepairEngine::default();
    let frozen_engine = RepairEngine::new(EngineConfig {
        freeze_scans: true,
        ..EngineConfig::default()
    });
    assert_eq!(
        live_engine.count_violations(&g, &rules.rules),
        frozen_engine.count_violations(&g, &rules.rules)
    );
}

#[test]
fn report_serializes_to_json() {
    let rules = gold_kg_rules();
    let mut g = dirty(150, 8);
    let report = RepairEngine::default().repair(&mut g, &rules.rules);
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("repairs_applied"));
    assert!(json.contains("per_rule"));
}
