//! Cross-crate integration: the full clean → noise → repair → metrics
//! pipeline, per inconsistency class and mixed.

use grepair_core::{RepairEngine, RuleSet};
use grepair_eval::evaluate_repair;
use grepair_gen::{
    generate_kg, gold_kg_rules, inject_kg_noise, ErrorClass, KgConfig, NoiseConfig,
};

fn run_class(class: Option<ErrorClass>, rate: f64, seed: u64) -> (bool, f64, f64, f64) {
    let (clean, refs) = generate_kg(&KgConfig::with_persons(400));
    let mut dirty = clean.clone();
    let cfg = match class {
        Some(c) => NoiseConfig::single_class(c, rate, seed),
        None => NoiseConfig {
            rate,
            seed,
            ..NoiseConfig::default()
        },
    };
    let truth = inject_kg_noise(&mut dirty, &refs, &cfg);
    assert!(!truth.is_empty(), "noise must inject something");

    let mut repaired = dirty.clone();
    let rules = gold_kg_rules();
    let report = RepairEngine::default().repair(&mut repaired, &rules.rules);
    repaired.check_invariants().expect("invariants after repair");
    let q = evaluate_repair(&clean, &dirty, &repaired, &truth, &report.ops);
    (report.converged, q.precision, q.recall, q.f1)
}

#[test]
fn incompleteness_pipeline() {
    let (converged, p, r, f1) = run_class(Some(ErrorClass::Incompleteness), 0.1, 1);
    assert!(converged);
    assert!(p > 0.95, "precision {p}");
    assert!(r > 0.95, "recall {r}");
    assert!(f1 > 0.95, "f1 {f1}");
}

#[test]
fn conflict_pipeline() {
    let (converged, p, r, f1) = run_class(Some(ErrorClass::Conflict), 0.1, 2);
    assert!(converged);
    assert!(p > 0.9, "precision {p}");
    assert!(r > 0.9, "recall {r}");
    assert!(f1 > 0.9, "f1 {f1}");
}

#[test]
fn redundancy_pipeline() {
    let (converged, p, r, f1) = run_class(Some(ErrorClass::Redundancy), 0.1, 3);
    assert!(converged);
    assert!(p > 0.9, "precision {p}");
    assert!(r > 0.9, "recall {r}");
    assert!(f1 > 0.9, "f1 {f1}");
}

#[test]
fn mixed_pipeline_multiple_seeds() {
    for seed in [1, 2, 3, 4] {
        let (converged, _, _, f1) = run_class(None, 0.12, seed);
        assert!(converged, "seed {seed} did not converge");
        assert!(f1 > 0.9, "seed {seed}: f1 {f1}");
    }
}

#[test]
fn repair_then_renoise_then_repair() {
    // A repaired graph can be re-noised and re-repaired — the engine does
    // not depend on pristine generator state.
    let (clean, refs) = generate_kg(&KgConfig::with_persons(300));
    let mut g = clean.clone();
    let rules = gold_kg_rules();
    let engine = RepairEngine::default();
    for round in 0..3 {
        inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig {
                rate: 0.05,
                seed: 100 + round,
                ..NoiseConfig::default()
            },
        );
        let report = engine.repair(&mut g, &rules.rules);
        assert!(report.converged, "round {round}");
        g.check_invariants().unwrap();
    }
}

#[test]
fn dsl_rule_set_round_trips_through_json_and_still_repairs() {
    let rules = gold_kg_rules();
    let json = rules.to_json();
    let rules2 = RuleSet::from_json(&json).expect("round trip");
    assert_eq!(rules, rules2);

    let (clean, refs) = generate_kg(&KgConfig::with_persons(200));
    let mut dirty = clean.clone();
    inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
    let report = RepairEngine::default().repair(&mut dirty, &rules2.rules);
    assert!(report.converged);
}
