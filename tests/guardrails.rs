//! Guardrail property tests: cancellation and deadline trips at *any*
//! check boundary leave the graph equal to a completed prefix of
//! rounds, with a typed outcome and zero panics.
//!
//! The driver is deterministic in the spirit of the store's scripted
//! `FaultyFs` schedules: [`Budget::cancel_at_check`] trips cancellation
//! at exactly the Nth checkpoint, and a reference run (same substrate,
//! same rules, no trip) records every committed round through a
//! [`RepairSink`], so each cancelled run can be checked for
//! committed-round-prefix equality by replaying rounds 0..k and
//! comparing [`Graph::to_doc`] documents. A second property pins
//! serial ≡ parallel under cancellation by flipping the cancel token
//! from the sink at a round boundary — rounds are deterministic across
//! thread counts, so both runs must stop on the identical prefix.

use grepair_core::{
    AppliedOp, EngineConfig, EngineMode, Grr, RepairEngine, RepairOutcome, RepairSink,
};
use grepair_gen::{
    generate_kg, generate_social, gold_kg_rules, inject_kg_noise, social_rules, KgConfig,
    NoiseConfig, SocialConfig,
};
use grepair_graph::{Graph, GraphDoc};
use grepair_obs::{Budget, TestClock, TripReason};
use grepair_store::{DurableGraph, Mutation, StoreConfig};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

// ---- deterministic fixtures -----------------------------------------------

/// One randomized scenario: a dirty substrate, a rule subset, an
/// engine configuration.
#[derive(Clone, Debug)]
struct Case {
    /// 0 = noisy KG, 1 = social network (dirty by construction).
    substrate: u8,
    seed: u64,
    size: usize,
    /// Bit i keeps rule i (mod rule count); 0 keeps the full set.
    rule_mask: u8,
    /// 0 = naive, 1 = naive+stratified, 2 = incremental.
    engine: u8,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        any::<u8>(),
        any::<u64>(),
        40usize..100,
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(substrate, seed, size, rule_mask, engine)| Case {
            substrate: substrate % 2,
            seed,
            size,
            rule_mask,
            engine: engine % 3,
        })
}

fn build_case(c: &Case) -> (Graph, Vec<Grr>, EngineConfig) {
    let g = if c.substrate == 0 {
        let (mut g, refs) = generate_kg(&KgConfig {
            seed: c.seed,
            ..KgConfig::with_persons(c.size)
        });
        inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig {
                rate: 0.12,
                seed: c.seed,
                ..NoiseConfig::default()
            },
        );
        g
    } else {
        generate_social(&SocialConfig {
            accounts: c.size,
            seed: c.seed,
            ..SocialConfig::default()
        })
        .0
    };
    let full = if c.substrate == 0 {
        gold_kg_rules().rules
    } else {
        social_rules().rules
    };
    let picked: Vec<Grr> = full
        .iter()
        .enumerate()
        .filter(|(i, _)| c.rule_mask == 0 || c.rule_mask & (1 << (i % 8)) != 0)
        .map(|(_, r)| r.clone())
        .collect();
    let rules = if picked.is_empty() { full } else { picked };
    let config = match c.engine {
        0 => EngineConfig {
            stratify: false,
            ..EngineConfig::naive()
        },
        1 => EngineConfig::naive(),
        _ => EngineConfig::default(),
    };
    (g, rules, config)
}

// ---- round recording and prefix replay ------------------------------------

#[derive(Default)]
struct RecState {
    current: Vec<AppliedOp>,
    rounds: Vec<Vec<AppliedOp>>,
}

/// Sink that groups applied ops by `round_committed` boundaries.
#[derive(Clone, Default)]
struct RoundRecorder {
    state: Rc<RefCell<RecState>>,
}

impl RepairSink for RoundRecorder {
    fn op(&mut self, op: &AppliedOp) {
        self.state.borrow_mut().current.push(op.clone());
    }
    fn round_committed(&mut self) {
        let mut st = self.state.borrow_mut();
        let ops = std::mem::take(&mut st.current);
        st.rounds.push(ops);
    }
}

/// Documents of every completed-round prefix: element k is the graph
/// after rounds 0..k, built by replaying the recorded ops (the same
/// journal replay path the durable store trusts).
fn prefix_docs(initial: &Graph, rounds: &[Vec<AppliedOp>]) -> Vec<GraphDoc> {
    let mut g = initial.clone();
    let mut docs = vec![g.to_doc()];
    for round in rounds {
        for op in round {
            Mutation::from_applied(op)
                .apply(&mut g)
                .expect("recorded round replays");
        }
        docs.push(g.to_doc());
    }
    docs
}

/// The checkpoint indices to cancel at: every boundary when the run is
/// small, otherwise the full head, an even stride through the middle,
/// and the exact end.
fn cancel_points(total_checks: u64) -> Vec<u64> {
    if total_checks <= 48 {
        return (1..=total_checks).collect();
    }
    let mut points: Vec<u64> = (1..=16).collect();
    let stride = (total_checks - 16) / 24;
    points.extend((1..=24).map(|k| 16 + k * stride));
    points.push(total_checks);
    points.sort_unstable();
    points.dedup();
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cancelling at every checkpoint boundary yields a graph equal to
    /// SOME completed prefix of the reference run's rounds, with a
    /// typed outcome and no panic.
    #[test]
    fn cancellation_at_every_check_boundary_is_a_round_prefix(case in case_strategy()) {
        let (g0, rules, config) = build_case(&case);

        // Reference run: record rounds and count checkpoints.
        let reference = Budget::unlimited();
        let rec = RoundRecorder::default();
        let mut g_ref = g0.clone();
        let ref_report = RepairEngine::new(config.clone())
            .with_budget(&reference)
            .repair_with_sink(&mut g_ref, &rules, rec.clone());
        prop_assert!(
            !ref_report.outcome.is_budget_trip(),
            "unlimited budget must not trip: {:?}", ref_report.outcome
        );
        let rounds = std::mem::take(&mut rec.state.borrow_mut().rounds);
        let prefixes = prefix_docs(&g0, &rounds);
        // Replay sanity: the full prefix reproduces the reference graph.
        prop_assert_eq!(prefixes.last().unwrap(), &g_ref.to_doc());

        for n in cancel_points(reference.checks()) {
            let budget = Budget::unlimited().cancel_at_check(n);
            let mut g = g0.clone();
            let report = RepairEngine::new(config.clone())
                .with_budget(&budget)
                .repair_with_sink(&mut g, &rules, |_: &AppliedOp| {});
            prop_assert!(
                matches!(report.outcome, RepairOutcome::Cancelled | RepairOutcome::Completed
                         | RepairOutcome::RoundLimit),
                "cancel at {}: unexpected outcome {:?}", n, report.outcome
            );
            let doc = g.to_doc();
            let k = prefixes.iter().position(|p| *p == doc);
            prop_assert!(
                k.is_some(),
                "cancel at check {} of {} left a graph that matches no completed-round prefix \
                 (outcome {:?}, {} ops)",
                n, reference.checks(), report.outcome, report.ops.len()
            );
        }
    }

    /// Serial and parallel runs cancelled at the same round boundary
    /// stop on the identical committed prefix with the same outcome.
    #[test]
    fn serial_equals_parallel_under_cancellation(case in case_strategy(), after in 1usize..6) {
        let (g0, rules, config) = build_case(&case);
        let run = |parallel: bool| {
            let budget = Budget::unlimited();
            let sink = CancelAfterRounds {
                budget: budget.clone(),
                remaining: after,
            };
            let mut g = g0.clone();
            let report = RepairEngine::new(EngineConfig {
                parallel,
                ..config.clone()
            })
            .with_budget(&budget)
            .repair_with_sink(&mut g, &rules, sink);
            (g.to_doc(), report.outcome, report.ops.len())
        };
        let (doc_s, outcome_s, ops_s) = run(false);
        let (doc_p, outcome_p, ops_p) = run(true);
        prop_assert_eq!(outcome_s, outcome_p);
        prop_assert_eq!(ops_s, ops_p);
        prop_assert_eq!(doc_s, doc_p);
    }

    /// A pre-expired test-clock deadline trips before any work: typed
    /// `Deadline` outcome, untouched graph, zero ops.
    #[test]
    fn expired_deadline_leaves_graph_untouched(case in case_strategy()) {
        let (g0, rules, config) = build_case(&case);
        let clock = TestClock::new();
        let budget = Budget::unlimited()
            .with_test_clock(&clock)
            .with_deadline(Duration::from_millis(1));
        clock.advance(Duration::from_secs(1));
        let mut g = g0.clone();
        let report = RepairEngine::new(config)
            .with_budget(&budget)
            .repair(&mut g, &rules);
        prop_assert_eq!(report.outcome, RepairOutcome::Deadline);
        prop_assert_eq!(report.ops.len(), 0);
        prop_assert_eq!(g.to_doc(), g0.to_doc());
        prop_assert_eq!(budget.tripped(), Some(TripReason::Deadline));
    }
}

/// Sink that flips the budget's cancel flag after N committed rounds —
/// deterministic across thread counts because rounds are.
struct CancelAfterRounds {
    budget: Budget,
    remaining: usize,
}

impl RepairSink for CancelAfterRounds {
    fn op(&mut self, _op: &AppliedOp) {}
    fn round_committed(&mut self) {
        if self.remaining > 0 {
            self.remaining -= 1;
            if self.remaining == 0 {
                self.budget.cancel();
            }
        }
    }
}

proptest! {
    // Store cases are heavier (create + repair + reopen per schedule);
    // keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A cancelled durable repair journals only completed rounds:
    /// reopening the store recovers exactly the in-memory graph the
    /// engine returned, for every sampled cancel schedule.
    #[test]
    fn reopened_store_after_cancelled_repair_shows_only_committed_rounds(
        case in case_strategy(),
        cancel_at in 1u64..24,
    ) {
        let (g0, rules, config) = build_case(&case);
        let dir = std::env::temp_dir().join(format!(
            "grepair-guardrails-{}-{:?}-{}-{}",
            std::process::id(),
            std::thread::current().id(),
            case.seed,
            cancel_at,
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DurableGraph::create_with(&dir, StoreConfig::default(), g0).unwrap();
        let budget = Budget::unlimited().cancel_at_check(cancel_at);
        let engine = RepairEngine::new(config).with_budget(&budget);
        let report = store.repair(&engine, &rules).unwrap();
        let in_memory = store.graph().dump_slots();
        let last_seq = store.last_seq();
        prop_assert_eq!(last_seq, report.ops.len() as u64);
        drop(store);

        let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        prop_assert_eq!(store.graph().dump_slots(), in_memory);
        store.graph().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Non-convergence is typed, not silent: a round-limited run reports
/// `RoundLimit` while a converged run with residuals-free fixpoint
/// reports `Completed` — the two `converged = false` causes are
/// distinguishable.
#[test]
fn round_limit_outcome_is_distinguishable_from_residuals() {
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(80));
    inject_kg_noise(
        &mut g,
        &refs,
        &NoiseConfig {
            rate: 0.1,
            seed: 3,
            ..NoiseConfig::default()
        },
    );
    let rules = gold_kg_rules();
    let limited = RepairEngine::new(EngineConfig {
        mode: EngineMode::Naive,
        max_rounds: 1,
        stratify: false,
        ..EngineConfig::default()
    })
    .repair(&mut g.clone(), &rules.rules);
    assert_eq!(limited.outcome, RepairOutcome::RoundLimit);
    assert!(!limited.converged);

    let full = RepairEngine::default().repair(&mut g, &rules.rules);
    assert_eq!(full.outcome, RepairOutcome::Completed);
}
