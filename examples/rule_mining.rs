//! Rule discovery: mine Graph Repairing Rules from a (mostly clean)
//! knowledge graph, print them as DSL, then use them to repair a noisy
//! copy — the full closed loop from data to rules to repairs.
//!
//! ```text
//! cargo run --release -p grepair-mine --example rule_mining
//! ```

use grepair_core::{rule_to_dsl, RepairEngine};
use grepair_gen::{generate_kg, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_mine::{mine_all, MinerConfig};

fn main() {
    println!("generating a clean KG (1500 persons)…");
    let (clean, refs) = generate_kg(&KgConfig::with_persons(1500));

    println!("mining rules…\n");
    let mined = mine_all(&clean, &MinerConfig::default());
    for m in &mined {
        println!(
            "# {:?}: support {}, confidence {:.3}",
            m.kind, m.support, m.confidence
        );
        print!("{}", rule_to_dsl(&m.rule));
        println!();
    }

    let rules: Vec<_> = mined.into_iter().map(|m| m.rule).collect();
    println!("mined {} rules; injecting noise and repairing with them…", rules.len());

    let mut dirty = clean.clone();
    let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
    let engine = RepairEngine::default();
    let before = engine.count_violations(&dirty, &rules);
    let report = engine.repair(&mut dirty, &rules);
    println!(
        "violations before: {before}; repairs applied: {}; converged: {} \
         (injected errors: {})",
        report.repairs_applied,
        report.converged,
        truth.len()
    );
    assert!(report.converged);
}
