//! Incremental watching: keep a violation view alive while a user edits
//! the graph, re-matching only the touched neighborhoods.
//!
//! ```text
//! cargo run -p grepair-eval --example incremental_watch
//! ```

use grepair_core::{RuleSet, Watcher};
use grepair_gen::{generate_kg, gold_kg_rules, KgConfig};
use grepair_match::TouchSet;
use grepair_graph::Value;

fn main() {
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(500));
    let rules: RuleSet = gold_kg_rules();
    let mut watcher = Watcher::new(&g, rules.rules.clone());
    println!(
        "watching {} rules over a clean graph: {} violations",
        watcher.rules().len(),
        watcher.violation_count(&g)
    );

    // Simulated user session: three edits, checked incrementally.
    println!("\nedit 1: a new person moves to a city (no citizenship)…");
    let newcomer = g.add_node_named("Person");
    let ssn = g.try_attr_key("ssn").unwrap();
    g.set_attr(newcomer, ssn, Value::Int(999_999)).unwrap();
    let city = refs.cities[0];
    g.add_edge_named(newcomer, city, "livesIn").unwrap();
    let touched: TouchSet = [newcomer, city].into_iter().collect();
    let new = watcher.update(&g, &touched);
    println!("  new violations: {new}");

    println!("edit 2: someone marries themselves…");
    let victim = refs.persons[0];
    g.add_edge_named(victim, victim, "marriedTo").unwrap();
    let new = watcher.update(&g, &[victim].into_iter().collect());
    println!("  new violations: {new}");

    println!("edit 3: a duplicate of the newcomer appears…");
    let dup = g.add_node_named("Person");
    g.set_attr(dup, ssn, Value::Int(999_999)).unwrap();
    let new = watcher.update(&g, &[dup].into_iter().collect());
    println!("  new violations: {new}");

    println!(
        "\noutstanding violations: {}",
        watcher.violation_count(&g)
    );
    for v in watcher.violations(&g) {
        println!("  rule #{} at {:?}", v.rule, v.m.nodes);
    }

    let applied = watcher.repair_all(&mut g);
    println!("\nrepair_all applied {applied} repairs");
    println!("outstanding violations: {}", watcher.violation_count(&g));
    assert_eq!(watcher.violation_count(&g), 0);
    g.check_invariants().unwrap();
}
