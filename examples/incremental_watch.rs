//! Persistent repair-on-ingest: a durable graph store fed by a stream of
//! edits, with incremental violation watching and durable repairs —
//! including a simulated crash and recovery between sessions.
//!
//! ```text
//! cargo run --example incremental_watch
//! ```
//!
//! The loop each "session":
//!
//! 1. open (or create) the store — recovery replays the journal;
//! 2. ingest a batch of external edits through the durable API;
//! 3. re-match only the touched neighborhoods ([`Watcher::update`]);
//! 4. repair durably ([`grepair_store::DurableGraph::repair`] journals
//!    every applied op);
//! 5. compact once the log outgrows its threshold.
//!
//! Between sessions 2 and 3 the "process" dies mid-write: garbage lands
//! on the active segment. Recovery truncates the torn tail and the graph
//! comes back exactly as last committed.

use grepair_core::{RepairEngine, RuleSet, Watcher};
use grepair_gen::gold_kg_rules;
use grepair_graph::Value;
use grepair_match::TouchSet;
use grepair_store::{DurableGraph, StoreConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("grepair-watch-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig {
        compact_log_bytes: 1024, // compact eagerly for the demo
        ..StoreConfig::default()
    };
    let rules: RuleSet = gold_kg_rules();
    let engine = RepairEngine::default();

    // Session 1: bootstrap the store with a seed city/country skeleton.
    println!("=== session 1: bootstrap ===");
    let mut store = DurableGraph::create(&dir, config.clone()).expect("create store");
    let country = store.add_node("Country").unwrap();
    store.set_attr(country, "name", Value::from("Norway")).unwrap();
    let city = store.add_node("City").unwrap();
    store.set_attr(city, "name", Value::from("Oslo")).unwrap();
    store.add_edge(city, country, "inCountry").unwrap();
    store.commit().unwrap();
    println!(
        "seeded {} nodes / {} edges (journal seq {})",
        store.graph().num_nodes(),
        store.graph().num_edges(),
        store.last_seq()
    );

    // Session 2: ingest people with incremental watching.
    println!("\n=== session 2: repair-on-ingest ===");
    let mut watcher = Watcher::new(store.graph(), rules.rules.clone());
    for batch in 0..3 {
        let mut touched = TouchSet::default();
        for i in 0..4 {
            let person = store.add_node("Person").unwrap();
            store
                .set_attr(person, "ssn", Value::Int(1000 + batch * 10 + i))
                .unwrap();
            // Moves to Oslo but never declares citizenship — a violation
            // the incompleteness rule will repair.
            store.add_edge(person, city, "livesIn").unwrap();
            touched.insert(person);
        }
        touched.insert(city);
        let fresh = watcher.update(store.graph(), &touched);
        println!(
            "batch {batch}: ingested 4 persons, {fresh} new violations in touched neighborhood"
        );
        let report = store.repair(&engine, &rules.rules).expect("durable repair");
        println!(
            "  repaired {} violations durably (journal seq {})",
            report.repairs_applied,
            store.last_seq()
        );
        if let Some(c) = store.maybe_compact().unwrap() {
            println!("  compacted: snapshot at seq {}", c.snapshot_seq);
        }
    }
    assert_eq!(watcher.violation_count(store.graph()), 0);
    let committed = store.graph().dump_slots();
    let committed_seq = store.last_seq();
    drop(store);

    // The crash: a torn half-record on the active segment.
    println!("\n=== crash: torn record on the active segment ===");
    let (_, seg) = grepair_store::wal::list_segments(&dir).unwrap().pop().unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    std::fs::write(&seg, &bytes).unwrap();
    println!("appended 3 garbage bytes to {}", seg.display());

    // Session 3: recovery, then business as usual.
    println!("\n=== session 3: recovery ===");
    let mut store = DurableGraph::open(&dir, config).expect("recover store");
    let r = store.last_recovery();
    println!(
        "recovered from snapshot seq {} + {} replayed records in {:?} \
         (truncated {} torn bytes)",
        r.snapshot_seq, r.records_replayed, r.wall, r.torn_tail_bytes
    );
    assert_eq!(store.graph().dump_slots(), committed, "exact committed state");
    assert_eq!(store.last_seq(), committed_seq);

    // Ingest after recovery: a duplicate person, caught and merged.
    let mut watcher = Watcher::new(store.graph(), rules.rules.clone());
    let dup = store.add_node("Person").unwrap();
    store.set_attr(dup, "ssn", Value::Int(1000)).unwrap();
    store.add_edge(dup, city, "livesIn").unwrap();
    let fresh = watcher.update(store.graph(), &[dup, city].into_iter().collect());
    println!("ingested a duplicate person: {fresh} new violations");
    let report = store.repair(&engine, &rules.rules).unwrap();
    println!(
        "repaired {} violations durably (journal seq {})",
        report.repairs_applied,
        store.last_seq()
    );
    assert_eq!(watcher.violation_count(store.graph()), 0);

    let status = store.status().unwrap();
    println!("\nfinal store status:\n{status}");
    store.graph().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    println!("\nok: repairs survived the crash; store verified.");
}
