//! Social-network deduplication: clean a born-dirty follower graph with
//! redundancy-centric rules (merge duplicate accounts, purge flagged
//! bots, backfill display names).
//!
//! ```text
//! cargo run --release -p grepair-eval --example social_dedup
//! ```

use grepair_core::RepairEngine;
use grepair_gen::{generate_social, social_rules, SocialConfig};
use grepair_graph::GraphStats;

fn main() {
    let cfg = SocialConfig {
        accounts: 3_000,
        duplicate_fraction: 0.08,
        ..SocialConfig::default()
    };
    let (mut g, _) = generate_social(&cfg);
    println!("dirty social graph: {}", GraphStats::compute(&g));

    let handle_k = g.try_attr_key("handle").unwrap();
    let dup_handles_before = g
        .nodes()
        .filter(|&n| {
            g.attr(n, handle_k)
                .map(|h| g.count_nodes_with_attr(handle_k, h) > 1)
                .unwrap_or(false)
        })
        .count();
    println!("accounts sharing a handle: {dup_handles_before}");

    let rules = social_rules();
    let report = RepairEngine::default().repair(&mut g, &rules.rules);
    println!(
        "\nrepaired with {} operations in {:?} (converged: {})",
        report.repairs_applied, report.wall, report.converged
    );
    for s in &report.per_rule {
        println!(
            "  {:<25} matches {:>4}  repairs {:>4}",
            s.name, s.matches_found, s.repairs_applied
        );
    }

    let dup_handles_after = g
        .nodes()
        .filter(|&n| {
            g.attr(n, handle_k)
                .map(|h| g.count_nodes_with_attr(handle_k, h) > 1)
                .unwrap_or(false)
        })
        .count();
    println!("\nclean social graph: {}", GraphStats::compute(&g));
    println!("accounts sharing a handle: {dup_handles_after}");
    assert_eq!(dup_handles_after, 0);
    assert!(report.converged);
}
