//! Quickstart: define a graph, write three repairing rules, repair.
//!
//! ```text
//! cargo run -p grepair-eval --example quickstart
//! ```

use grepair_core::{RepairEngine, RuleSet};
use grepair_graph::{Graph, Value};

fn main() {
    // A tiny knowledge graph with one error of each class.
    let mut g = Graph::new();
    let ssn = g.attr_key("ssn");

    // Ann lives in Oslo, Oslo is in Norway — but Ann's citizenship is
    // missing (incompleteness).
    let ann = g.add_node_named("Person");
    g.set_attr(ann, ssn, Value::Int(1)).unwrap();
    let oslo = g.add_node_named("City");
    let norway = g.add_node_named("Country");
    g.add_edge_named(ann, oslo, "livesIn").unwrap();
    g.add_edge_named(oslo, norway, "inCountry").unwrap();

    // Bob is married to himself (conflict).
    let bob = g.add_node_named("Person");
    g.set_attr(bob, ssn, Value::Int(2)).unwrap();
    g.add_edge_named(bob, bob, "marriedTo").unwrap();

    // Ann appears twice (redundancy).
    let ann2 = g.add_node_named("Person");
    g.set_attr(ann2, ssn, Value::Int(1)).unwrap();
    g.add_edge_named(ann2, oslo, "livesIn").unwrap();

    println!("before: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Three Graph Repairing Rules, one per inconsistency class.
    let rules = RuleSet::from_dsl(
        "quickstart",
        r#"
        rule add_citizenship [incompleteness]
        match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
        where not (x)-[citizenOf]->(k)
        repair insert edge (x)-[citizenOf]->(k)

        rule no_self_marriage [conflict]
        match (x:Person)-[marriedTo]->(x)
        repair delete edge (x)-[marriedTo]->(x)

        rule dedup_person [redundancy]
        match (x:Person), (y:Person)
        where x.ssn == y.ssn
        repair merge y into x
        "#,
    )
    .expect("rules parse");

    let report = RepairEngine::default().repair(&mut g, &rules.rules);

    println!("after:  {} nodes, {} edges", g.num_nodes(), g.num_edges());
    println!(
        "repairs applied: {} (converged: {}, total edit cost {:.1})",
        report.repairs_applied, report.converged, report.total_cost
    );
    for s in &report.per_rule {
        println!(
            "  {:<20} matches {:>2}  repairs {:>2}  cost {:>4.1}",
            s.name, s.matches_found, s.repairs_applied, s.cost
        );
    }
    for op in &report.ops {
        println!("  op: {op:?}");
    }
    assert!(report.converged);
}
