//! End-to-end knowledge-graph cleaning: generate a clean KG, inject the
//! paper's three inconsistency classes, repair with the gold GRR catalog,
//! and score the repair against ground truth — including the delete-only
//! baseline for contrast.
//!
//! ```text
//! cargo run --release -p grepair-eval --example knowledge_graph_cleaning
//! ```

use grepair_core::{RepairEngine, RepairReport};
use grepair_eval::{delete_only_rules, evaluate_repair};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_graph::GraphStats;

fn main() {
    let persons = 2_000;
    println!("generating clean KG with {persons} persons…");
    let (clean, refs) = generate_kg(&KgConfig::with_persons(persons));
    println!("  {}", GraphStats::compute(&clean));

    let mut dirty = clean.clone();
    let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
    let (inc, con, red) = truth.class_counts();
    println!(
        "injected {} errors (incompleteness {inc}, conflict {con}, redundancy {red})",
        truth.len()
    );

    let gold = gold_kg_rules();
    let engine = RepairEngine::default();
    println!(
        "violations detected: {}",
        engine.count_violations(&dirty, &gold.rules)
    );

    // Semantic repair with the gold GRR catalog.
    let mut repaired = dirty.clone();
    let report: RepairReport = engine.repair(&mut repaired, &gold.rules);
    let q = evaluate_repair(&clean, &dirty, &repaired, &truth, &report.ops);
    println!(
        "\nGRR repair ({} repairs, {:?}):",
        report.repairs_applied, report.wall
    );
    println!(
        "  precision {:.3}  recall {:.3}  F1 {:.3}  (made {} / needed {})",
        q.precision, q.recall, q.f1, q.made, q.needed
    );

    // Delete-only baseline: same detection, destructive repair.
    let mut deleted = dirty.clone();
    let del_rules = delete_only_rules(&gold);
    let del_report = engine.repair(&mut deleted, &del_rules.rules);
    let qd = evaluate_repair(&clean, &dirty, &deleted, &truth, &del_report.ops);
    println!(
        "\ndelete-only baseline ({} repairs):",
        del_report.repairs_applied
    );
    println!(
        "  precision {:.3}  recall {:.3}  F1 {:.3}",
        qd.precision, qd.recall, qd.f1
    );

    assert!(report.converged, "gold repair must converge");
    assert!(q.f1 > qd.f1, "semantic repair must beat deletion");
    println!(
        "\nsemantic repair beats deletion by ΔF1 = {:.3}",
        q.f1 - qd.f1
    );
}
