//! Static rule-set analysis: effectiveness, termination, consistency,
//! and implication checking over a deliberately flawed rule set.
//!
//! ```text
//! cargo run -p grepair-eval --example rule_analysis
//! ```

use grepair_core::{analyze, Effectiveness, RuleSet};

fn main() {
    let rules = RuleSet::from_dsl(
        "flawed-demo",
        r#"
        # Fine: effective, self-contained.
        rule drop_self_loop [conflict]
        match (x:Person)-[marriedTo]->(x)
        repair delete edge (x)-[marriedTo]->(x)

        # Ineffective: the repair never touches the violation.
        rule pointless [conflict]
        match (x:Person)-[marriedTo]->(x)
        repair set x.reviewed = true

        # Oscillating pair: each re-enables the other (non-terminating).
        rule flip_up [conflict]
        match (x:Flag) where x.v == 0
        repair set x.v = 1

        rule flip_down [conflict]
        match (x:Flag) where x.v == 1
        repair set x.v = 0

        # Contradiction: clashes with flip_up on unifiable nodes.
        rule force_zero [conflict]
        match (y:Flag) where has(y.v)
        repair set y.v = 0

        # Redundant: subsumed by drop_self_loop.
        rule drop_self_loop_vip [conflict]
        match (x:Person)-[marriedTo]->(x)
        where x.vip == true
        repair delete edge (x)-[marriedTo]->(x)
        "#,
    )
    .expect("rules parse");

    let report = analyze(&rules.rules);
    println!("analysed {} rules in {}µs\n", rules.len(), report.micros);

    println!("effectiveness:");
    for (rule, eff) in rules.rules.iter().zip(&report.effectiveness) {
        let verdict = match eff {
            Effectiveness::Effective => "effective",
            Effectiveness::Ineffective => "INEFFECTIVE — repair does not fix the violation",
            Effectiveness::Unknown => "unknown (no canonical instance)",
        };
        println!("  {:<22} {verdict}", rule.name);
    }

    println!("\ntermination: {}", report.terminating);
    for cycle in &report.cycles {
        let names: Vec<&str> = cycle
            .iter()
            .map(|&i| rules.rules[i].name.as_str())
            .collect();
        println!("  potential cycle: {}", names.join(" → "));
    }

    println!("\nconflicts ({}):", report.conflicts.len());
    for c in &report.conflicts {
        println!(
            "  {} ↔ {} [{}]: {}",
            rules.rules[c.a].name, rules.rules[c.b].name, c.kind, c.detail
        );
    }

    println!("\nimplications ({}):", report.implications.len());
    for imp in &report.implications {
        println!(
            "  {} is subsumed by {}",
            rules.rules[imp.redundant].name, rules.rules[imp.by].name
        );
    }

    // The demo rule set is flawed in exactly the advertised ways.
    assert!(report
        .effectiveness.contains(&Effectiveness::Ineffective));
    assert!(!report.terminating);
    assert!(!report.conflicts.is_empty());
    assert!(!report.implications.is_empty());
}
