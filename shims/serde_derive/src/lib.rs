//! In-tree shim of `serde_derive`: hand-rolled token parsing (no
//! syn/quote available) generating impls of the serde shim's
//! content-tree `Serialize`/`Deserialize` traits.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! - structs with named fields, honoring `#[serde(skip)]`,
//!   `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`;
//!   missing `Option` fields deserialize as `None`
//! - tuple structs (single-field ones delegate to the inner value, as
//!   real serde does for newtypes; `#[serde(transparent)]` is accepted)
//! - enums with unit / tuple / struct variants, externally tagged like
//!   real serde (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`)
//! - `#[serde(untagged)]` enums, deserialized by trying variants in
//!   declaration order
//!
//! Generics are not supported (none of the workspace's serialized types
//! are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---- model --------------------------------------------------------------

struct Item {
    name: String,
    untagged: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
    skip_if: Option<String>,
    is_option: bool,
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---- parsing ------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    untagged: bool,
    skip: bool,
    default: bool,
    skip_if: Option<String>,
}

fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Consume leading `#[...]` attributes from `toks[*idx..]`, folding any
/// `#[serde(...)]` flags into the returned set.
fn take_attrs(toks: &[TokenTree], idx: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *idx < toks.len() && is_punct(&toks[*idx], '#') {
        let TokenTree::Group(g) = &toks[*idx + 1] else {
            panic!("serde_derive: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if inner.first().and_then(ident_str).as_deref() == Some("serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(&args.stream().into_iter().collect::<Vec<_>>(), &mut attrs);
            }
        }
        *idx += 2;
    }
    attrs
}

fn parse_serde_args(args: &[TokenTree], attrs: &mut SerdeAttrs) {
    let mut i = 0;
    while i < args.len() {
        let name = ident_str(&args[i]).unwrap_or_default();
        // `name = "literal"` or bare `name`.
        if i + 2 < args.len() && is_punct(&args[i + 1], '=') {
            let lit = args[i + 2].to_string();
            let value = lit.trim_matches('"').to_string();
            if name == "skip_serializing_if" {
                attrs.skip_if = Some(value);
            }
            i += 3;
        } else {
            match name.as_str() {
                "transparent" => attrs.transparent = true,
                "untagged" => attrs.untagged = true,
                "skip" => attrs.skip = true,
                "default" => attrs.default = true,
                _ => {}
            }
            i += 1;
        }
        if i < args.len() && is_punct(&args[i], ',') {
            i += 1;
        }
    }
}

/// Skip `pub`, `pub(...)` visibility at `toks[*idx..]`.
fn skip_vis(toks: &[TokenTree], idx: &mut usize) {
    if *idx < toks.len() && ident_str(&toks[*idx]).as_deref() == Some("pub") {
        *idx += 1;
        if *idx < toks.len() {
            if let TokenTree::Group(g) = &toks[*idx] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *idx += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;
    let container = take_attrs(&toks, &mut idx);
    skip_vis(&toks, &mut idx);
    let keyword = ident_str(&toks[idx]).expect("serde_derive: expected struct/enum");
    idx += 1;
    let name = ident_str(&toks[idx]).expect("serde_derive: expected type name");
    idx += 1;
    if idx < toks.len() && is_punct(&toks[idx], '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match toks.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => panic!("serde_derive: malformed enum {name}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        untagged: container.untagged,
        kind,
    }
}

/// Parse `name: Type, ...` fields, honoring `<...>` nesting when looking
/// for the separating commas.
fn parse_named_fields(toks: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < toks.len() {
        let attrs = take_attrs(toks, &mut idx);
        if idx >= toks.len() {
            break;
        }
        skip_vis(toks, &mut idx);
        let name = ident_str(&toks[idx]).expect("serde_derive: expected field name");
        idx += 1;
        assert!(is_punct(&toks[idx], ':'), "serde_derive: expected `:` after field name");
        idx += 1;
        // First type token decides Option-ness (fallback to None on missing input).
        let is_option = ident_str(&toks[idx]).as_deref() == Some("Option");
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while idx < toks.len() {
            if is_punct(&toks[idx], '<') {
                depth += 1;
            } else if is_punct(&toks[idx], '>') {
                depth -= 1;
            } else if depth == 0 && is_punct(&toks[idx], ',') {
                idx += 1;
                break;
            }
            idx += 1;
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
            skip_if: attrs.skip_if,
            is_option,
        });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut idx = 0;
    while idx < toks.len() {
        // Leading per-field attributes would confuse the comma count; the
        // workspace has none, but skip them defensively.
        if depth == 0 && is_punct(&toks[idx], '#') {
            idx += 2;
            continue;
        }
        if is_punct(&toks[idx], '<') {
            depth += 1;
        } else if is_punct(&toks[idx], '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(&toks[idx], ',') && idx + 1 < toks.len() {
            count += 1;
        }
        idx += 1;
    }
    count
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < toks.len() {
        let _attrs = take_attrs(toks, &mut idx);
        if idx >= toks.len() {
            break;
        }
        let name = ident_str(&toks[idx]).expect("serde_derive: expected variant name");
        idx += 1;
        let data = match toks.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                idx += 1;
                VariantData::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                idx += 1;
                VariantData::Struct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantData::Unit,
        };
        if idx < toks.len() && is_punct(&toks[idx], ',') {
            idx += 1;
        }
        variants.push(Variant { name, data });
    }
    variants
}

// ---- codegen: Serialize -------------------------------------------------

fn named_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    // `access_prefix` is "&self." for structs, "" for destructured
    // variant bindings (which are already references).
    let mut out = String::from("{ let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();");
    for f in fields {
        if f.skip {
            continue;
        }
        let access = format!("{}{}", access_prefix, f.name);
        let push = format!(
            "m.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_content({a})));",
            n = f.name,
            a = access
        );
        match &f.skip_if {
            Some(path) => out.push_str(&format!("if !({path}({a})) {{ {push} }}", a = access)),
            None => out.push_str(&push),
        }
    }
    out.push_str(" ::serde::Content::Map(m) }");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => named_fields_to_map(fields, "&self."),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm = match &v.data {
                    VariantData::Unit => {
                        let content = if item.untagged {
                            "::serde::Content::Null".to_string()
                        } else {
                            format!("::serde::Content::Str(::std::string::String::from(\"{vname}\"))")
                        };
                        format!("{name}::{vname} => {content},")
                    }
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_content(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                        };
                        let content = tag_content(item, vname, &inner);
                        format!("{name}::{vname}({}) => {content},", binds.join(", "))
                    }
                    VariantData::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_to_map(fields, "");
                        let content = tag_content(item, vname, &inner);
                        format!("{name}::{vname} {{ {} }} => {content},", binds.join(", "))
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_content(&self) -> ::serde::Content {{ {body} }} }}"
    )
}

/// Wrap variant content in the external `{"Variant": ...}` tag unless
/// untagged.
fn tag_content(item: &Item, vname: &str, inner: &str) -> String {
    if item.untagged {
        inner.to_string()
    } else {
        format!(
            "::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})])"
        )
    }
}

// ---- codegen: Deserialize -----------------------------------------------

/// `Name { f: ..., ... }` construction from a map in `src` (an expression
/// of type `&Content`).
fn named_fields_from_map(type_path: &str, fields: &[Field], src: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            // Skipped fields never consult the input, so their type needs
            // no Deserialize impl — only Default.
            inits.push_str(&format!("{fname}: ::core::default::Default::default(),"));
            continue;
        }
        let fallback = if f.default {
            "::core::default::Default::default()".to_string()
        } else if f.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{fname}\"))"
            )
        };
        inits.push_str(&format!(
            "{fname}: match {src}.get(\"{fname}\") {{ \
               ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, \
               ::std::option::Option::None => {fallback} \
             }},"
        ));
    }
    format!(
        "{{ if {src}.as_map().is_none() {{ \
             return ::std::result::Result::Err(::serde::DeError::expected(\"map\", {src})); \
           }} \
           ::std::result::Result::Ok({type_path} {{ {inits} }}) }}"
    )
}

/// `Name::Variant(a, b, ...)` construction from sequence content in `src`.
fn tuple_from_seq(ctor: &str, n: usize, src: &str) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_content({src})?))"
        );
    }
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
        .collect();
    format!(
        "{{ let items = {src}.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", {src}))?; \
           if items.len() != {n} {{ \
             return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\
               \"expected {n} elements, found {{}}\", items.len()))); \
           }} \
           ::std::result::Result::Ok({ctor}({items})) }}",
        items = items.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => named_fields_from_map(name, fields, "c"),
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
        ),
        Kind::TupleStruct(n) => tuple_from_seq(name, *n, "c"),
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) if item.untagged => {
            // Try variants in declaration order; first success wins.
            let mut tries = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.data {
                    VariantData::Unit => tries.push_str(&format!(
                        "if ::std::matches!(c, ::serde::Content::Null) {{ \
                           return ::std::result::Result::Ok({name}::{vname}); }}"
                    )),
                    VariantData::Tuple(1) => tries.push_str(&format!(
                        "if let ::std::result::Result::Ok(v) = ::serde::Deserialize::from_content(c) {{ \
                           return ::std::result::Result::Ok({name}::{vname}(v)); }}"
                    )),
                    VariantData::Tuple(n) => tries.push_str(&format!(
                        "if let ::std::result::Result::Ok(v) = \
                           (|| -> ::std::result::Result<{name}, ::serde::DeError> {{ {} }})() {{ \
                           return ::std::result::Result::Ok(v); }}",
                        tuple_from_seq(&format!("{name}::{vname}"), *n, "c")
                    )),
                    VariantData::Struct(fields) => tries.push_str(&format!(
                        "if let ::std::result::Result::Ok(v) = \
                           (|| -> ::std::result::Result<{name}, ::serde::DeError> {{ {} }})() {{ \
                           return ::std::result::Result::Ok(v); }}",
                        named_fields_from_map(&format!("{name}::{vname}"), fields, "c")
                    )),
                }
            }
            format!(
                "{tries} ::std::result::Result::Err(::serde::DeError::custom(\
                   \"data did not match any variant of untagged enum {name}\"))"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.data {
                    VariantData::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                        // Also accept `{"Variant": null}` like serde does.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    VariantData::Tuple(n) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => {},",
                        tuple_from_seq(&format!("{name}::{vname}"), *n, "inner")
                    )),
                    VariantData::Struct(fields) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => {},",
                        named_fields_from_map(&format!("{name}::{vname}"), fields, "inner")
                    )),
                }
            }
            format!(
                "match c {{ \
                   ::serde::Content::Str(s) => match s.as_str() {{ \
                     {unit_arms} \
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown variant `{{other}}` of enum {name}\"))), \
                   }}, \
                   ::serde::Content::Map(pairs) if pairs.len() == 1 => {{ \
                     let (tag, inner) = &pairs[0]; \
                     let _ = inner; \
                     match tag.as_str() {{ \
                       {tagged_arms} \
                       other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{other}}` of enum {name}\"))), \
                     }} \
                   }}, \
                   other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", other)), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ \
             {body} \
           }} \
         }}"
    )
}
