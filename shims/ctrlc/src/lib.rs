//! In-tree shim of the `ctrlc` crate: a minimal SIGINT handler.
//!
//! The real signal handler does the absolute minimum that is
//! async-signal-safe — it flips one static atomic (first ^C) or calls
//! `_exit(130)` (second ^C, the "I really mean it" escape hatch). A
//! plain watcher thread polls the atomic every ~50 ms and invokes the
//! user's closure from ordinary thread context, so the closure is free
//! to take locks, allocate, and log. This mirrors how cooperative
//! cancellation wants to be fed: the closure typically just flips a
//! `CancelToken`, and the application winds down at its own pace.
//!
//! Unsafe is confined to the two `extern "C"` calls in
//! [`install_handler`]; everything above them is safe Rust. On
//! non-unix targets [`set_handler`] is a no-op that still spawns the
//! watcher (the flag simply never fires).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Set by the signal handler on the first SIGINT; consumed (reset) by
/// the watcher thread right before it invokes the user closure.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// How many SIGINTs have ever arrived. The handler hard-exits on the
/// second one so a wedged shutdown can always be escaped.
static SIGINT_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Guards against installing two watcher threads.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Error returned by [`set_handler`].
#[derive(Debug)]
pub enum Error {
    /// `set_handler` was called twice in one process.
    MultipleHandlers,
    /// The OS rejected the signal registration.
    System(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::MultipleHandlers => write!(f, "a ctrl-c handler is already installed"),
            Error::System(e) => write!(f, "failed to install signal handler: {e}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
        fn raise(signum: i32) -> i32;
    }

    /// The actual signal handler: async-signal-safe by construction —
    /// one atomic store, one atomic add, and (second time only) _exit.
    extern "C" fn on_sigint(_signum: i32) {
        if super::SIGINT_COUNT.fetch_add(1, Ordering::SeqCst) >= 1 {
            // Second ^C: the graceful path is taking too long or is
            // wedged. 130 = 128 + SIGINT, the shell convention.
            unsafe { _exit(130) }
        }
        super::INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install_handler() -> std::io::Result<()> {
        let handler = on_sigint as extern "C" fn(i32) as *const () as usize;
        let prev = unsafe { signal(SIGINT, handler) };
        if prev == SIG_ERR {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deliver SIGINT to the current process (tests only).
    pub fn raise_sigint() {
        unsafe {
            raise(SIGINT);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install_handler() -> std::io::Result<()> {
        Ok(())
    }
    pub fn raise_sigint() {}
}

/// Install `handler` to run (on a plain thread, not in signal context)
/// after each SIGINT. A second SIGINT while the first is being handled
/// hard-exits the process with status 130.
pub fn set_handler<F>(handler: F) -> Result<(), Error>
where
    F: FnMut() + Send + 'static,
{
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return Err(Error::MultipleHandlers);
    }
    sys::install_handler().map_err(Error::System)?;
    let mut handler = handler;
    std::thread::Builder::new()
        .name("ctrlc-watcher".into())
        .spawn(move || loop {
            if INTERRUPTED.swap(false, Ordering::SeqCst) {
                handler();
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .map_err(Error::System)?;
    Ok(())
}

/// Deliver a SIGINT to this process — lets integration tests drive the
/// installed handler without an interactive terminal.
pub fn raise_for_test() {
    sys::raise_sigint();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn handler_runs_after_raise_and_double_install_fails() {
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        set_handler(move || {
            f.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(matches!(
            set_handler(|| {}),
            Err(Error::MultipleHandlers)
        ));

        raise_for_test();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "handler never fired after raise(SIGINT)"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}
