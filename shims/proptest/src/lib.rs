//! In-tree shim of `proptest`.
//!
//! Strategies generate values from a deterministic per-test RNG (seeded
//! from the test's module path and case index, so failures reproduce
//! run-to-run); there is no shrinking — a failing case reports the
//! generated inputs via `Debug` instead. The macro surface matches the
//! subset the workspace's property tests use: `proptest!` with an
//! optional `#![proptest_config(...)]` header, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`, `any::<T>()`,
//! range/tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! and `Strategy::prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Test-runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed or discarded test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure with message.
    Fail(String),
    /// `prop_assume!` rejection; the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Failure constructor.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection constructor.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG driving generation — deterministic per (test, case).
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Runner for a given test name and case index.
    pub fn new(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)),
        }
    }

    /// 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform index into `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

impl rand::RngCore for TestRunner {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.base.generate(runner))
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite floats only: tests feed these into arithmetic.
        f64::from_bits(runner.next_u64() >> 12)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::*`).

    use super::{SizeRange, Strategy, TestRunner};

    /// Vec of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + runner.index(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use super::{Strategy, TestRunner};

    /// `None` one time in four, `Some(inner)` otherwise (matches real
    //  proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.chance(0.25) {
                None
            } else {
                Some(self.inner.generate(runner))
            }
        }
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let i = runner.index(self.options.len());
        self.options[i].generate(runner)
    }
}

/// Uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion: fails the case (with message) instead of panicking
/// directly, so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n {}",
                stringify!($left), stringify!($right), l, ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by test functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let test_name = ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name));
                for case in 0..cfg.cases {
                    let mut runner = $crate::TestRunner::new(test_name, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                    let inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::panic!(
                                "proptest case {case} failed: {msg}\ninputs:\n{inputs}"
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec(any::<u8>(), 1..7);
        let mut r1 = crate::TestRunner::new("t", 3);
        let mut r2 = crate::TestRunner::new("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for case in 0..200 {
            let mut r = crate::TestRunner::new("len", case);
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()), "len = {}", v.len());
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let s = (0i64..4, any::<bool>());
        for case in 0..100 {
            let mut r = crate::TestRunner::new("rt", case);
            let (i, _b) = s.generate(&mut r);
            assert!((0..4).contains(&i));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for case in 0..200 {
            let mut r = crate::TestRunner::new("oneof", case);
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself works end-to-end.
        #[test]
        fn macro_roundtrip(v in prop::collection::vec(any::<u8>(), 0..10), flag in any::<bool>()) {
            prop_assume!(v.len() != 9);
            prop_assert!(v.len() < 10);
            let doubled: Vec<u16> = v.iter().map(|&x| x as u16 * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            if flag {
                prop_assert_ne!(v.len(), 100);
            }
        }
    }
}
