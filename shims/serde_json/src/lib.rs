//! In-tree shim of `serde_json`: converts the serde shim's [`Content`]
//! tree to and from JSON text. Formatting matches real `serde_json`
//! where the workspace can observe it: floats always carry a decimal
//! point or exponent (so `Float(2.0)` round-trips as a float, not an
//! integer), non-finite floats serialize as `null`, and pretty output
//! uses two-space indentation.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// This crate's result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize to pretty (2-space indented) JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

// ---- writer -------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's `null`.
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // `{}` prints integral floats without a decimal point; add one so the
    // value parses back as a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let slice = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::new("truncated utf-8"))?;
                    out.push_str(
                        std::str::from_utf8(slice).map_err(|e| Error::new(e.to_string()))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|e| Error::new(e.to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1i64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&s).unwrap(), v);
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![true, false]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"k":[true,false]}"#);
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<bool>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        let s = to_string_pretty(&m).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn integral_float_keeps_decimal_point() {
        // Without the `.0` the value would come back as an integer and
        // break untagged enums distinguishing Int from Float.
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&-0.5f64).unwrap(), "-0.5");
        // Huge magnitudes print as digit strings; they must still parse
        // back as floats (the integer parse overflows first).
        assert_eq!(from_str::<f64>(&to_string(&1e300f64).unwrap()).unwrap(), 1e300);
    }

    #[test]
    fn unicode_and_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""héllo""#).unwrap(), "héllo");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<i64>("42x").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<i64>>(" [ 1 , 2 ,\n\t3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
