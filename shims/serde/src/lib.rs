//! In-tree shim of `serde`.
//!
//! Instead of real serde's visitor-driven zero-copy architecture, this
//! shim routes everything through an owned content tree ([`Content`], a
//! superset of the JSON data model): `Serialize` renders a value *to* a
//! tree, `Deserialize` reads a value *from* one. The companion
//! `serde_derive` shim generates impls honoring the container/field
//! attributes this workspace uses (`transparent`, `untagged`, `skip`,
//! `default`, `skip_serializing_if`), and `serde_json` converts trees
//! to/from JSON text. External enum tagging matches real serde, so the
//! wire format is interchangeable for the types in this tree.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned serialization tree (the JSON data model, with integers kept
/// exact).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion-ordered key/value pairs.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map pairs, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The sequence items, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Arbitrary-message constructor.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing struct field.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render to a [`Content`] tree.
pub trait Serialize {
    /// Build the tree.
    fn to_content(&self) -> Content;
}

/// Rebuild from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Read the tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range"))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if let Ok(i) = i64::try_from(v) {
                    Content::I64(i)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range"))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        // Values beyond u64 fall back to a decimal string: the shim's
        // content tree keeps integers at 64 bits.
        if let Ok(v) = u64::try_from(*self) {
            v.to_content()
        } else {
            Content::Str(self.to_string())
        }
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::I64(v) => u128::try_from(*v)
                .map_err(|_| DeError::custom(format!("integer {v} out of range"))),
            Content::U64(v) => Ok(*v as u128),
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|e| DeError::custom(format!("invalid u128 `{s}`: {e}"))),
            other => Err(DeError::expected("integer", other)),
        }
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            // JSON cannot represent non-finite floats; serde_json writes
            // them as null, so accept null back as NaN.
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---- containers ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = c.as_seq().ok_or_else(|| DeError::expected("sequence", c))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {want}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// JSON object keys are strings; mirror serde_json by stringifying
/// string and integer keys (a newtype id over `u32` serializes as an
/// integer and becomes `"42"`).
fn key_to_string(key: &Content) -> String {
    match key {
        Content::Str(s) => s.clone(),
        Content::I64(v) => v.to_string(),
        Content::U64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("map key must be a string or integer, found {}", other.kind()),
    }
}

/// Invert [`key_to_string`]: hand the raw string to `K` first, and only
/// if `K` rejects strings retry as an integer (so `String` keys that
/// *look* numeric stay strings).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    match K::from_content(&Content::Str(key.to_owned())) {
        Ok(k) => Ok(k),
        Err(first) => {
            if let Ok(i) = key.parse::<i64>() {
                if let Ok(k) = K::from_content(&Content::I64(i)) {
                    return Ok(k);
                }
            }
            if let Ok(u) = key.parse::<u64>() {
                if let Ok(k) = K::from_content(&Content::U64(u)) {
                    return Ok(k);
                }
            }
            Err(first)
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_content()), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let pairs = c.as_map().ok_or_else(|| DeError::expected("map", c))?;
        pairs
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output (hash maps iterate in seed order).
        let mut pairs: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_content()), v.to_content()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(pairs)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let pairs = c.as_map().ok_or_else(|| DeError::expected("map", c))?;
        pairs
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(u32::from_content(&7u32.to_content()).unwrap(), 7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        assert_eq!(BTreeMap::<String, i64>::from_content(&m.to_content()).unwrap(), m);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_content(&o.to_content()).unwrap(), None);
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn errors_name_the_mismatch() {
        let err = i64::from_content(&Content::Str("nope".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
        assert!(String::from_content(&Content::I64(3)).is_err());
    }
}
