//! In-tree shim of the `rustc-hash` crate: the Fx hasher (a fast,
//! non-cryptographic multiply-mix hash) plus the `FxHashMap` /
//! `FxHashSet` aliases the workspace uses. API-compatible with the
//! subset of the real crate this tree needs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Default-constructible builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hash: rotate, xor, multiply per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
    }
}
