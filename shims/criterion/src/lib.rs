//! In-tree shim of `criterion`: the macro + builder API surface the
//! workspace's benches use, measuring wall-clock time with `Instant`
//! instead of criterion's statistical machinery. Each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints the
//! median per-iteration time. Intended for relative comparisons (the
//! speedup ratios the benches exist to demonstrate), not rigorous
//! statistics.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Median per-iteration times of every benchmark run so far, in
/// registration order; drained by [`write_results_json`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Free-form scalar metrics (speedups, counters) recorded by bench
/// summaries via [`record_metric`].
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Record a named scalar (a speedup ratio, a counter) so it lands in the
/// bench's `BENCH_<name>.json` alongside the timing results. Non-finite
/// values are dropped with a warning — JSON has no NaN/inf token, and a
/// bad ratio must not corrupt the whole results file.
pub fn record_metric(id: impl Into<String>, value: f64) {
    let id = id.into();
    if !value.is_finite() {
        eprintln!("warning: dropping non-finite metric {id} = {value}");
        return;
    }
    METRICS.lock().unwrap().push((id, value));
}

/// Median-of-`samples` wall time of `f`, after one untimed warm-up call
/// — the shared summary-timing helper for benches that report speedup
/// ratios outside criterion groups.
pub fn median_time<R>(samples: usize, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write every recorded benchmark result (and metric) as
/// `BENCH_<name>.json` at the workspace root — but only in smoke mode
/// (`GREPAIR_BENCH_SMOKE` set), where runtimes are small enough that the
/// numbers are a perf *trajectory* marker, not a rigorous measurement.
///
/// [`criterion_main!`] calls this automatically with the bench target's
/// crate name; benches with a hand-written `main` call it themselves.
/// The schema is stable and checked by `grepair-bench`'s `bench_json`
/// test: `bench`, `smoke`, `results[]` (`id`, `median_ns`,
/// `iters_per_sec`), `metrics{}`.
pub fn write_results_json(bench_name: &str) {
    if std::env::var_os("GREPAIR_BENCH_SMOKE").is_none() {
        return;
    }
    // Benches run with CARGO_MANIFEST_DIR = the bench package dir; the
    // workspace root is two levels up (crates/<pkg>/). Fall back to the
    // current directory outside cargo.
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| {
            let p = std::path::PathBuf::from(d);
            p.ancestors().nth(2).map(|a| a.to_path_buf()).unwrap_or(p)
        })
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let results = RESULTS.lock().unwrap();
    let metrics = METRICS.lock().unwrap();
    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"bench\": \"{}\",\n  \"smoke\": true,\n  \"results\": [",
        json_escape(bench_name)
    ));
    for (i, (id, median_ns)) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let per_sec = if *median_ns > 0.0 {
            1e9 / median_ns
        } else {
            0.0
        };
        json.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"median_ns\": {median_ns:.1}, \"iters_per_sec\": {per_sec:.3}}}",
            json_escape(id)
        ));
    }
    json.push_str("\n  ],\n  \"metrics\": {");
    for (i, (id, value)) in metrics.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\n    \"{}\": {value:.6}", json_escape(id)));
    }
    json.push_str("\n  }\n}\n");
    let path = root.join(format!("BENCH_{bench_name}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.default_sample_size, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Benchmark identifier; plain strings or `BenchmarkId::new` pairs.
pub trait IntoBenchmarkId {
    /// Render the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Batch-size hint for `iter_batched` (the shim treats all variants the
/// same: one setup per measured invocation).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Accumulated measured time across samples.
    samples: Vec<Duration>,
    /// Iterations per sample (tuned during warm-up).
    iters: u64,
}

impl Bencher {
    /// Measure `f` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let iters = self.iters;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.samples.push(total / iters as u32);
    }

    /// Measure `routine` on fresh state from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let iters = self.iters;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.samples.push(measured / iters as u32);
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the state.
    pub fn iter_batched_ref<I, R, S: FnMut() -> I, F: FnMut(&mut I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let iters = self.iters;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            measured += start.elapsed();
        }
        self.samples.push(measured / iters as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up pass: one iteration, which also calibrates how many
    // iterations fit in a reasonable sample without starving fast
    // benchmarks of resolution.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters: 1,
    };
    f(&mut warmup);
    let per_iter = warmup
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_micros(1))
        .max(Duration::from_nanos(1));
    // Aim for ~20ms per sample, capped to keep total runtime bounded.
    let iters = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    RESULTS
        .lock()
        .unwrap()
        .push((label.to_owned(), median.as_nanos() as f64));
    println!("  {label:<50} {:>12} /iter ({iters} iters x {sample_size} samples)", fmt_duration(median));
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, then (in smoke mode) writing
/// the machine-readable `BENCH_<target>.json` summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_results_json(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(2);
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default();
        quick_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 2 + 2));
    }
}
