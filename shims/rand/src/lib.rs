//! In-tree shim of the `rand` crate (0.8-era API subset): a seedable
//! xoshiro256** generator behind `StdRng`, the `Rng`/`SeedableRng`
//! traits, and uniform range / Bernoulli sampling. Deterministic for a
//! given seed, which is all the generators and tests here rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface (blanket-implemented for any
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (shim analogue of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi.wrapping_sub(lo) as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Debiased uniform draw from `[0, span)` (`span > 0`) by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** core step.
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25..1.75);
            assert!((0.25..1.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
