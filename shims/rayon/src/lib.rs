//! In-tree shim of the `rayon` crate.
//!
//! Unlike real rayon's lazy work-stealing pipelines, this shim evaluates
//! each adapter **eagerly**: every `map`/`filter`/`flat_map` call is one
//! parallel pass over the items, with input order preserved. Terminal
//! operations (`collect`, `sum`, `for_each`, …) then fold the
//! already-computed values sequentially. Semantics match rayon for the
//! deterministic, order-preserving subset this workspace uses; only the
//! scheduling strategy differs.
//!
//! # Scheduling
//!
//! Work runs on a **lazily-initialized persistent worker pool**: the
//! first parallel pass spawns long-lived workers (up to the requested
//! budget, capped at [`MAX_POOL_WORKERS`]) that block on a shared
//! injector queue. A parallel pass then costs one allocation and a few
//! queue pushes instead of N `thread::spawn`s. Each pass splits its
//! items into small chunks claimed from a shared atomic counter, so
//! uneven per-item cost balances across workers (morsel-style
//! stealing), and results are written to per-chunk slots and stitched
//! back together in chunk order, preserving input order exactly.
//!
//! Two properties matter for correctness under nesting:
//!
//! - **Thread-budget inheritance.** [`ThreadPool::install`] records the
//!   budget in a thread-local; every task submitted by a pass carries
//!   the submitter's effective budget and installs it on the worker for
//!   the task's duration, so nested parallel calls see the installed
//!   count instead of falling back to `available_parallelism`.
//! - **Help-while-wait.** A pass that has submitted tasks participates
//!   in draining its own chunks and then, while waiting for stragglers,
//!   pops and runs *other* queued tasks. A nested pass running on a
//!   pool worker therefore cannot deadlock the (bounded) pool: blocked
//!   submitters keep executing queued work.
//!
//! Worker panics are caught per-task, forwarded to the submitting pass,
//! and resumed on the caller's thread once the pass completes.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`] on the
    /// calling thread and inherited by pool workers for each task's
    /// duration; `0` means "use available parallelism".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads the next parallel pass will use.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Hard cap on persistent pool workers; installs above this are
/// oversubscribed onto the existing workers via the shared queue.
const MAX_POOL_WORKERS: usize = 64;

/// A queued unit of work. Tasks are lifetime-erased closures; the
/// submitting pass guarantees (via its completion latch) that every
/// borrow a task captures outlives the task's execution.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The shared injector feeding the persistent workers.
struct Injector {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    spawned: AtomicUsize,
}

/// The process-wide pool, created on first use.
fn injector() -> &'static Injector {
    static POOL: OnceLock<Injector> = OnceLock::new();
    POOL.get_or_init(|| Injector {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Number of persistent workers spawned so far (test/bench visibility).
pub fn pool_spawned_workers() -> usize {
    injector().spawned.load(Ordering::Relaxed)
}

/// Grow the pool until at least `want` workers exist (capped).
fn ensure_workers(want: usize) {
    let inj = injector();
    let want = want.min(MAX_POOL_WORKERS);
    loop {
        let cur = inj.spawned.load(Ordering::Relaxed);
        if cur >= want {
            return;
        }
        if inj
            .spawned
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let spawned = thread::Builder::new()
            .name(format!("rayon-shim-{cur}"))
            .spawn(worker_main)
            .is_ok();
        if !spawned {
            // Could not create the thread; give the slot back and run
            // with however many workers exist (possibly zero — passes
            // still complete because submitters help-while-wait).
            inj.spawned.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Persistent worker loop: block on the injector, run tasks forever.
fn worker_main() {
    let inj = injector();
    loop {
        let task = {
            let mut q = inj.queue.lock().expect("rayon shim queue poisoned");
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = inj.available.wait(q).expect("rayon shim queue poisoned");
            }
        };
        task();
    }
}

/// Enqueue one task for the pool.
fn push_task(t: Task) {
    let inj = injector();
    inj.queue
        .lock()
        .expect("rayon shim queue poisoned")
        .push_back(t);
    inj.available.notify_one();
}

/// Pop one queued task without blocking (used by help-while-wait).
fn try_pop_task() -> Option<Task> {
    injector()
        .queue
        .lock()
        .expect("rayon shim queue poisoned")
        .pop_front()
}

/// Counts outstanding tasks of one pass; signaled as each task's final
/// action, after its last access to the pass context.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn signal(&self) {
        let mut g = self.remaining.lock().expect("rayon shim latch poisoned");
        *g -= 1;
        if *g == 0 {
            self.done.notify_all();
        }
    }

    /// Wait for all tasks, executing other queued tasks in the meantime
    /// so nested passes on a bounded pool cannot deadlock.
    fn wait_helping(&self) {
        loop {
            {
                let g = self.remaining.lock().expect("rayon shim latch poisoned");
                if *g == 0 {
                    return;
                }
            }
            if let Some(task) = try_pop_task() {
                task();
                continue;
            }
            let g = self.remaining.lock().expect("rayon shim latch poisoned");
            if *g == 0 {
                return;
            }
            // Short timeout: a nested pass may enqueue new helpable work
            // that only notifies the injector condvar, not this latch.
            let _ = self
                .done
                .wait_timeout(g, Duration::from_millis(1))
                .expect("rayon shim latch poisoned");
        }
    }
}

/// Shared state of one parallel pass: chunked inputs, per-chunk output
/// slots, a claim counter, an optional early-exit predicate, and the
/// first captured panic.
struct PassCtx<'s, T, R, F> {
    chunks: Vec<Mutex<Option<Vec<T>>>>,
    outs: Vec<Mutex<Vec<R>>>,
    next: AtomicUsize,
    f: F,
    budget: usize,
    /// Morsel-drain early exit: consulted before each chunk claim.
    /// Claims are handed out in index order, so however the workers
    /// interleave, the set of processed chunks is always a contiguous
    /// prefix of the input.
    stop: Option<&'s (dyn Fn() -> bool + Sync)>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T, R, F: Fn(T) -> R> PassCtx<'_, T, R, F> {
    /// Claim and map chunks until the pass is drained or the stop
    /// predicate fires. Panics from `f` are caught and parked in
    /// `self.panic` (first wins); draining continues so the latch
    /// always completes.
    fn drain(&self) {
        loop {
            if let Some(stop) = self.stop {
                if stop() {
                    return;
                }
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks.len() {
                return;
            }
            let taken = self.chunks[i]
                .lock()
                .expect("rayon shim chunk poisoned")
                .take();
            let Some(chunk) = taken else { continue };
            match catch_unwind(AssertUnwindSafe(|| {
                chunk.into_iter().map(|t| (self.f)(t)).collect::<Vec<R>>()
            })) {
                Ok(out) => *self.outs[i].lock().expect("rayon shim slot poisoned") = out,
                Err(p) => {
                    let mut slot = self.panic.lock().expect("rayon shim panic slot poisoned");
                    slot.get_or_insert(p);
                }
            }
        }
    }
}

/// One order-preserving parallel map pass over `items`, executed on the
/// persistent pool with the submitter helping.
fn par_pass<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    par_pass_inner(items, None, f)
}

/// Shim extension (not in upstream rayon): an order-preserving parallel
/// map pass that stops claiming work once `stop` returns true — the
/// cooperative-cancellation hook for budgeted drains (e.g. WAL-replay
/// decode-ahead under a deadline).
///
/// Chunk claims are handed out in index order, so the returned vector
/// is always a *contiguous prefix* of the full map result (the whole
/// result when `stop` never fires); chunks claimed before the stop was
/// observed are finished, never torn. `stop` must be cheap — it runs
/// once per chunk claim on every worker.
pub fn par_pass_until<T: Send, R: Send>(
    items: Vec<T>,
    stop: &(dyn Fn() -> bool + Sync),
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    par_pass_inner(items, Some(stop), f)
}

fn par_pass_inner<T: Send, R: Send>(
    items: Vec<T>,
    stop: Option<&(dyn Fn() -> bool + Sync)>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let budget = current_num_threads();
    if budget <= 1 || items.len() <= 1 {
        // Serial fallback: per-item stop granularity, same prefix
        // contract.
        return match stop {
            Some(stop) => items
                .into_iter()
                .map_while(|t| if stop() { None } else { Some(f(t)) })
                .collect(),
            None => items.into_iter().map(f).collect(),
        };
    }
    grepair_obs::counter("rayon.passes").inc();
    let pass_started = grepair_obs::timer();
    // Oversplit relative to the budget so uneven per-chunk cost
    // balances via the shared claim counter.
    let n = items.len();
    let workers = budget.min(n);
    let chunk_len = n.div_ceil(workers * 4).max(1);
    let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }
    let n_chunks = chunks.len();
    let outs: Vec<Mutex<Vec<R>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let ctx = PassCtx {
        chunks,
        outs,
        next: AtomicUsize::new(0),
        f,
        budget,
        stop,
        panic: Mutex::new(None),
    };
    let helpers = workers.saturating_sub(1).min(n_chunks.saturating_sub(1));
    if helpers > 0 {
        ensure_workers(workers);
        let latch = Arc::new(Latch::new(helpers));
        for _ in 0..helpers {
            let latch_for_task = Arc::clone(&latch);
            let ctx_ref = &ctx;
            // A helper's entire pass-context access happens before the
            // latch signal; after signaling it only drops `'static`
            // captures (the reference itself has no drop glue).
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let prev = POOL_THREADS.with(|c| c.replace(ctx_ref.budget));
                ctx_ref.drain();
                POOL_THREADS.with(|c| c.set(prev));
                latch_for_task.signal();
            });
            // SAFETY: the task borrows `ctx` (and `f` inside it), which
            // live on this stack frame. `latch.wait_helping()` below
            // does not return until every submitted task has signaled,
            // and each task signals only after its last access to the
            // borrowed context, so no borrow outlives this frame.
            let task: Task = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                    task,
                )
            };
            push_task(task);
        }
        ctx.drain();
        latch.wait_helping();
    } else {
        ctx.drain();
    }
    if let Some(p) = ctx.panic.into_inner().expect("rayon shim panic slot poisoned") {
        resume_unwind(p);
    }
    grepair_obs::record_since_named("rayon.pass_ns", pass_started);
    ctx.outs
        .into_iter()
        .flat_map(|m| m.into_inner().expect("rayon shim slot poisoned"))
        .collect()
}

/// An eagerly-evaluated parallel iterator: adapters run one parallel
/// pass each and store the results.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map.
    pub fn map<R: Send, F: Fn(T) -> R + Sync + Send>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_pass(self.items, f),
        }
    }

    /// Parallel filter.
    pub fn filter<F: Fn(&T) -> bool + Sync + Send>(self, f: F) -> ParIter<T> {
        ParIter {
            items: par_pass(self.items, |t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Parallel flat-map (each produced iterator is drained on its worker).
    pub fn flat_map<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync + Send,
    {
        ParIter {
            items: par_pass(self.items, |t| f(t).into_iter().collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Parallel flat-map over serial iterators (rayon's `flat_map_iter`).
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync + Send,
    {
        self.flat_map(f)
    }

    /// Parallel for-each.
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        par_pass(self.items, f);
    }

    /// Collect into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the (already computed) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Fold-reduce with an identity (rayon-compatible shape).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Owned conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference conversion (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Convert.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Thread-pool build error (the shim never actually fails).
#[derive(Clone, Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker thread count (`0` = auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool handle. Workers are shared process-wide and grown
    /// lazily on the first parallel pass that needs them.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A pool handle scoping a thread-count budget. All handles share one
/// persistent process-wide worker set; the handle only decides how many
/// tasks a pass fans out into.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread budget installed. The budget is
    /// visible to every parallel pass `f` performs, including nested
    /// passes running on pool workers (tasks inherit the submitter's
    /// budget for their duration).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// The configured thread count (0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<usize> = (0..500).collect();
        let s: usize = v.par_iter().map(|x| x + 1).sum();
        assert_eq!(s, (0..500).map(|x| x + 1).sum());
    }

    #[test]
    fn filter_and_flat_map() {
        let v: Vec<i32> = (0..100).collect();
        let evens: Vec<i32> = v.clone().into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        let pairs: Vec<i32> = v.into_par_iter().flat_map(|x| vec![x, -x]).collect();
        assert_eq!(pairs.len(), 200);
        assert_eq!(pairs[0..2], [0, 0]);
    }

    #[test]
    fn par_pass_until_without_stop_matches_full_map() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out: Vec<u64> = pool.install(|| {
            par_pass_until((0..1000u64).collect(), &|| false, |x| x * 3)
        });
        assert_eq!(out, (0..1000u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_pass_until_yields_contiguous_prefix() {
        use std::sync::atomic::AtomicBool;
        for threads in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let tripped = AtomicBool::new(false);
            let processed = AtomicUsize::new(0);
            let out: Vec<u64> = pool.install(|| {
                par_pass_until(
                    (0..4096u64).collect(),
                    &|| tripped.load(Ordering::Relaxed),
                    |x| {
                        // Trip mid-drain: later chunk claims must stop.
                        if processed.fetch_add(1, Ordering::Relaxed) == 100 {
                            tripped.store(true, Ordering::Relaxed);
                        }
                        x
                    },
                )
            });
            assert!(out.len() < 4096, "stop ignored at {threads} threads");
            // Prefix contract: element i of the output is input i.
            for (i, &x) in out.iter().enumerate() {
                assert_eq!(x, i as u64, "torn prefix at {threads} threads");
            }
        }
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
        });
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<u32> = pool1.install(|| vec![3u32, 1, 4].into_par_iter().map(|x| x).collect());
        assert_eq!(out, vec![3, 1, 4]);
    }

    #[test]
    fn parallelism_actually_uses_threads() {
        use std::collections::HashSet;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let _: Vec<u32> = pool.install(|| {
            v.par_iter()
                .map(|x| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    // Slow the chunks down enough that pool workers get a
                    // chance to claim some before the caller drains all.
                    std::thread::sleep(Duration::from_micros(200));
                    *x
                })
                .collect()
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected multiple worker threads"
        );
    }

    #[test]
    fn pool_workers_are_persistent_across_passes() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let v: Vec<u32> = (0..256).collect();
            let _: u32 = v.par_iter().map(|x| *x).sum();
        });
        let after_first = pool_spawned_workers();
        assert!(after_first >= 1, "first pass should have spawned workers");
        for _ in 0..8 {
            pool.install(|| {
                let v: Vec<u32> = (0..256).collect();
                let _: u32 = v.par_iter().map(|x| *x).sum();
            });
        }
        assert_eq!(
            pool_spawned_workers(),
            after_first,
            "subsequent passes must reuse the persistent workers"
        );
    }

    #[test]
    fn nested_pass_inherits_installed_thread_count() {
        // Regression: pool workers used to see POOL_THREADS = 0 and fall
        // back to available_parallelism, so nested passes under a
        // num_threads(2) install ran with the wrong budget.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let observed: Vec<Vec<usize>> = pool.install(|| {
            vec![(); 4]
                .into_par_iter()
                .map(|()| {
                    std::thread::sleep(Duration::from_micros(100));
                    vec![(); 4]
                        .into_par_iter()
                        .map(|()| current_num_threads())
                        .collect::<Vec<_>>()
                })
                .collect()
        });
        for seen in observed.iter().flatten() {
            assert_eq!(
                *seen, 2,
                "nested parallel work must inherit the installed budget"
            );
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let v: Vec<u32> = (0..64).collect();
                let _: Vec<u32> = v
                    .par_iter()
                    .map(|x| {
                        if *x == 33 {
                            panic!("boom");
                        }
                        *x
                    })
                    .collect();
            })
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool must stay usable after a panicked pass.
        let v: Vec<u32> = (0..64).collect();
        let s: u32 = pool.install(|| v.par_iter().map(|x| *x).sum());
        assert_eq!(s, (0..64).sum::<u32>());
    }

    #[test]
    fn deep_nesting_completes_on_bounded_pool() {
        // Three levels of nesting under a 2-thread budget: blocked
        // submitters must help drain the queue rather than deadlock.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total: usize = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|a| {
                    (0..4usize)
                        .into_par_iter()
                        .map(|b| {
                            (0..4usize)
                                .into_par_iter()
                                .map(|c| a + b + c)
                                .sum::<usize>()
                        })
                        .sum::<usize>()
                })
                .sum()
        });
        let expect: usize = (0..4)
            .flat_map(|a| (0..4).flat_map(move |b| (0..4).map(move |c| a + b + c)))
            .sum();
        assert_eq!(total, expect);
    }
}
