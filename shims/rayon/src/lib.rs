//! In-tree shim of the `rayon` crate.
//!
//! Unlike real rayon's lazy work-stealing pipelines, this shim evaluates
//! each adapter **eagerly**: every `map`/`filter`/`flat_map` call is one
//! parallel pass over the items using `std::thread::scope`, chunked
//! across the configured number of threads, with input order preserved.
//! Terminal operations (`collect`, `sum`, `for_each`, …) then fold the
//! already-computed values sequentially. Semantics match rayon for the
//! deterministic, order-preserving subset this workspace uses; only the
//! scheduling strategy differs.

use std::cell::Cell;
use std::thread;

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`];
    /// `0` means "use available parallelism".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads the next parallel pass will use.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// One order-preserving parallel map pass over `items`.
fn par_pass<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// An eagerly-evaluated parallel iterator: adapters run one parallel
/// pass each and store the results.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map.
    pub fn map<R: Send, F: Fn(T) -> R + Sync + Send>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_pass(self.items, f),
        }
    }

    /// Parallel filter.
    pub fn filter<F: Fn(&T) -> bool + Sync + Send>(self, f: F) -> ParIter<T> {
        ParIter {
            items: par_pass(self.items, |t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Parallel flat-map (each produced iterator is drained on its worker).
    pub fn flat_map<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync + Send,
    {
        ParIter {
            items: par_pass(self.items, |t| f(t).into_iter().collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Parallel flat-map over serial iterators (rayon's `flat_map_iter`).
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync + Send,
    {
        self.flat_map(f)
    }

    /// Parallel for-each.
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        par_pass(self.items, f);
    }

    /// Collect into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the (already computed) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Fold-reduce with an identity (rayon-compatible shape).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Owned conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference conversion (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Convert.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Thread-pool build error (the shim never actually fails).
#[derive(Clone, Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker thread count (`0` = auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override; workers are spawned
/// per parallel pass rather than kept hot.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count installed for all parallel
    /// passes on the current thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// The configured thread count (0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<usize> = (0..500).collect();
        let s: usize = v.par_iter().map(|x| x + 1).sum();
        assert_eq!(s, (0..500).map(|x| x + 1).sum());
    }

    #[test]
    fn filter_and_flat_map() {
        let v: Vec<i32> = (0..100).collect();
        let evens: Vec<i32> = v.clone().into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        let pairs: Vec<i32> = v.into_par_iter().flat_map(|x| vec![x, -x]).collect();
        assert_eq!(pairs.len(), 200);
        assert_eq!(pairs[0..2], [0, 0]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
        });
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<u32> = pool1.install(|| vec![3u32, 1, 4].into_par_iter().map(|x| x).collect());
        assert_eq!(out, vec![3, 1, 4]);
    }

    #[test]
    fn parallelism_actually_uses_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = v
            .par_iter()
            .map(|x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                *x
            })
            .collect();
        if thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(ids.lock().unwrap().len() > 1, "expected multiple worker threads");
        }
    }
}
