//! Workspace facade for the GRR (Graph Repairing Rules) system.
//!
//! This crate re-exports the workspace's public layers so integration
//! tests and downstream users can depend on a single crate:
//!
//! - [`graph`] — the storage substrate ([`grepair_graph`])
//! - [`matching`] — subgraph-isomorphism matching ([`grepair_match`])
//! - [`core`] — rules, engines, repair semantics ([`grepair_core`])
//! - [`gen`] — synthetic dataset generators ([`grepair_gen`])
//! - [`mine`] — rule mining ([`grepair_mine`])
//! - [`eval`] — repair-quality metrics and experiments ([`grepair_eval`])
//!
//! # Quickstart
//!
//! ```
//! use grepair::core::{RepairEngine, RuleSet};
//! use grepair::graph::Graph;
//!
//! let mut g = Graph::new();
//! let bob = g.add_node_named("Person");
//! g.add_edge_named(bob, bob, "marriedTo").unwrap(); // conflict: self-marriage
//!
//! let rules = RuleSet::from_dsl(
//!     "demo",
//!     r#"
//!     rule no_self_marriage [conflict]
//!     match (x:Person)-[marriedTo]->(x)
//!     repair delete edge (x)-[marriedTo]->(x)
//!     "#,
//! )
//! .unwrap();
//! let report = RepairEngine::default().repair(&mut g, &rules.rules);
//! assert!(report.converged);
//! assert_eq!(g.num_edges(), 0);
//! ```

#![forbid(unsafe_code)]

pub use grepair_core as core;
pub use grepair_eval as eval;
pub use grepair_gen as gen;
pub use grepair_graph as graph;
pub use grepair_match as matching;
pub use grepair_mine as mine;
